//! The serve-daemon benchmark behind `repro --bench-serve-json`
//! (`BENCH_serve.json`): a live `gstore serve` daemon over a simulated
//! SSD array, driven by 1/8/32 concurrent clients each issuing the mixed
//! workload over the wire — held against running the same queries as
//! sequential one-shots (a fresh engine per sweep, a cold reader per
//! point read). The report carries per-arm throughput and p50/p99
//! request latency plus the daemon's own `serve` counter group, whose
//! `read_amortization` shows how much scan traffic concurrent clients
//! shared.

use crate::model::{sim_for_store, Measured};
use crate::workloads::{degrees, Scale};
use gstore_core::spec::run_point;
use gstore_core::{GStoreEngine, PointReader, QueryKind, QuerySpec};
use gstore_graph::Result;
use gstore_io::StorageBackend;
use gstore_metrics::ServeMetrics;
use gstore_scr::ScrConfig;
use gstore_server::{serve, Client, Reply, ServeOptions};
use gstore_tile::{TileIndex, TileStore, Tiling};
use std::sync::Arc;
use std::time::Instant;

/// Concurrency levels measured.
pub const CLIENTS: [usize; 3] = [1, 8, 32];

/// Rotations of the mixed workload each client issues per arm.
pub const ROTATIONS_PER_CLIENT: usize = 1;

/// The mixed per-client workload: six sweep queries and three point
/// reads, the same shapes `gstore serve` interleaves in production. Each
/// client starts the rotation at its own offset so concurrent arms keep
/// dissimilar queries in flight together.
pub const MIXED_SPECS: [&str; 9] = [
    "bfs:0",
    "bfs:3",
    "pagerank:5",
    "wcc",
    "kcore:2",
    "degrees",
    "neighbors:1",
    "degree:2",
    "khop:0:2",
];

fn index_of(store: &TileStore) -> TileIndex {
    TileIndex::raw(
        store.layout().clone(),
        store.encoding(),
        store.start_edge().to_vec(),
    )
}

/// The same semi-external memory policy as the multi-query bench:
/// segments of data/8, pool of data/2.
fn serve_builder(store: &TileStore) -> Result<gstore_core::EngineBuilder> {
    let seg = (store.data_bytes() / 8).max(4096);
    let total = store.data_bytes() / 2 + 2 * seg + 4096;
    Ok(GStoreEngine::builder().scr(ScrConfig::new(seg, total)?))
}

/// One concurrency level's measurement against the live daemon.
#[derive(Debug, Clone)]
pub struct Arm {
    pub clients: usize,
    /// Queries issued across all clients (sweeps + point reads).
    pub queries: usize,
    /// Replies that were not `OK` (typed ERR, or BUSY after retries).
    pub failures: usize,
    pub wall_s: f64,
    /// Per-request latencies measured at the client call sites,
    /// nanoseconds, sorted.
    pub latencies_ns: Vec<u64>,
    /// The daemon's `serve` counter group at shutdown.
    pub serve: ServeMetrics,
}

impl Arm {
    /// Latency at quantile `q` from the measured (not bucketed) samples.
    pub fn latency_ns(&self, q: f64) -> u64 {
        if self.latencies_ns.is_empty() {
            return 0;
        }
        let rank = (q * (self.latencies_ns.len() - 1) as f64).round() as usize;
        self.latencies_ns[rank]
    }

    /// Aggregate throughput over the arm's wall time.
    pub fn qps(&self) -> f64 {
        self.queries as f64 / self.wall_s.max(1e-12)
    }
}

/// Everything `BENCH_serve.json` reports.
#[derive(Debug, Clone)]
pub struct ServeReport {
    pub scale: Scale,
    pub data_bytes: u64,
    /// The one-shot yardstick: every query of one rotation run in
    /// isolation, fresh engine per sweep, cold reader per point read.
    pub sequential: Measured,
    /// Queries in the sequential yardstick (one rotation).
    pub sequential_queries: usize,
    pub arms: Vec<Arm>,
}

impl ServeReport {
    /// Sequential one-shot throughput, the baseline the arms are held
    /// against.
    pub fn sequential_qps(&self) -> f64 {
        self.sequential_queries as f64 / self.sequential.runtime().max(1e-12)
    }

    pub fn to_json(&self) -> String {
        let mut arms = String::new();
        for (i, a) in self.arms.iter().enumerate() {
            if i > 0 {
                arms.push_str(",\n    ");
            }
            arms.push_str(&format!(
                "{{ \"clients\": {}, \"queries\": {}, \"failures\": {}, \"wall_s\": {:.6}, \
                 \"qps\": {:.1}, \"p50_ns\": {}, \"p99_ns\": {}, \"sweep_queries\": {}, \
                 \"point_queries\": {}, \"batches\": {}, \"mean_batch_size\": {:.3}, \
                 \"sweeps\": {}, \"rejected\": {}, \"bytes_read\": {}, \
                 \"bytes_amortized\": {}, \"read_amortization\": {:.4} }}",
                a.clients,
                a.queries,
                a.failures,
                a.wall_s,
                a.qps(),
                a.latency_ns(0.50),
                a.latency_ns(0.99),
                a.serve.queries_completed,
                a.serve.point_queries,
                a.serve.batches,
                a.serve.mean_batch_size(),
                a.serve.sweeps,
                a.serve.queries_rejected,
                a.serve.bytes_read,
                a.serve.bytes_amortized,
                a.serve.read_amortization(),
            ));
        }
        format!(
            "{{\n  \"schema\": \"gstore-bench-serve-v1\",\n  \"workload\": {{ \
             \"kron_scale\": {}, \"edge_factor\": {}, \"tile_bits\": {}, \"group_side\": {}, \
             \"data_bytes\": {}, \"rotations_per_client\": {}, \"specs_per_rotation\": {} }},\n  \
             \"sequential\": {{ \"queries\": {}, \"runtime_s\": {:.6}, \"bytes\": {}, \
             \"qps\": {:.1} }},\n  \"arms\": [\n    {}\n  ]\n}}\n",
            self.scale.kron_scale,
            self.scale.edge_factor,
            self.scale.tile_bits,
            self.scale.group_side,
            self.data_bytes,
            ROTATIONS_PER_CLIENT,
            MIXED_SPECS.len(),
            self.sequential_queries,
            self.sequential.runtime(),
            self.sequential.bytes,
            self.sequential_qps(),
            arms,
        )
    }
}

/// Runs one rotation of the mixed workload as sequential one-shots:
/// every sweep on a fresh engine over a fresh array, every point read on
/// a cold reader — what a client pays without the daemon.
fn run_sequential(store: &TileStore, tiling: Tiling, deg: &[u64]) -> Result<Measured> {
    let mut wall = 0.0;
    let mut io = 0.0;
    let mut bytes = 0u64;
    for spec_text in MIXED_SPECS {
        let spec: QuerySpec = spec_text.parse()?;
        let sim = sim_for_store(store, 2);
        let backend: Arc<dyn StorageBackend> = sim.clone();
        let start = Instant::now();
        if spec.kind() == QueryKind::Point {
            let reader = PointReader::with_recorder(index_of(store), backend, 64 << 20, None);
            std::hint::black_box(run_point(&reader, &spec, 42)?);
        } else {
            let mut alg = spec.to_algorithm(tiling, Some(deg))?;
            let mut engine = serve_builder(store)?
                .backend(index_of(store), backend)
                .build()?;
            engine.run(alg.as_mut(), u32::MAX)?;
        }
        wall += start.elapsed().as_secs_f64();
        let s = sim.stats();
        io += s.elapsed;
        bytes += s.total_bytes;
    }
    Ok(Measured { wall, io, bytes })
}

/// Runs one arm: a daemon over a fresh array, `clients` threads each
/// issuing `ROTATIONS_PER_CLIENT` rotations of the mixed workload over
/// the wire, latency timed per request.
fn run_arm(store: &TileStore, clients: usize) -> Result<Arm> {
    let sim = sim_for_store(store, 2);
    let backend: Arc<dyn StorageBackend> = sim.clone();
    let engine = serve_builder(store)?
        .backend(index_of(store), backend)
        .metrics(true)
        .build()?;
    let handle = serve(engine, ServeOptions::default())?;
    let addr = handle.local_addr().to_string();

    let start = Instant::now();
    let per_client: Vec<(Vec<u64>, usize)> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..clients)
            .map(|c| {
                let addr = &addr;
                scope.spawn(move || {
                    let mut client = Client::connect(addr)?;
                    let mut lats = Vec::new();
                    let mut failures = 0usize;
                    for i in 0..ROTATIONS_PER_CLIENT * MIXED_SPECS.len() {
                        // Offset the rotation per client so an arm keeps
                        // dissimilar queries in flight at once.
                        let spec = MIXED_SPECS[(c + i) % MIXED_SPECS.len()];
                        let t = Instant::now();
                        let reply = client.query_retrying(spec, 10_000)?;
                        lats.push(t.elapsed().as_nanos() as u64);
                        if !matches!(reply, Reply::Value(_)) {
                            failures += 1;
                        }
                    }
                    Ok::<_, std::io::Error>((lats, failures))
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("client thread panicked"))
            .collect::<std::io::Result<Vec<_>>>()
    })
    .map_err(gstore_graph::GraphError::Io)?;
    let wall_s = start.elapsed().as_secs_f64();

    let mut latencies: Vec<u64> = Vec::new();
    let mut failures = 0usize;
    for (lats, fails) in per_client {
        latencies.extend(lats);
        failures += fails;
    }
    latencies.sort_unstable();

    let engine = handle.shutdown();
    let serve = engine
        .metrics()
        .expect("daemon engine is instrumented")
        .serve;
    Ok(Arm {
        clients,
        queries: clients * ROTATIONS_PER_CLIENT * MIXED_SPECS.len(),
        failures,
        wall_s,
        latencies_ns: latencies,
        serve,
    })
}

/// Runs the sequential yardstick and every concurrency arm at `scale`.
pub fn run_serve_bench(scale: &Scale) -> Result<ServeReport> {
    let el = scale.kron();
    let store = scale.store(&el);
    let deg = degrees(&el);
    let tiling = *store.layout().tiling();
    let sequential = run_sequential(&store, tiling, &deg)?;
    let mut arms = Vec::new();
    for clients in CLIENTS {
        arms.push(run_arm(&store, clients)?);
    }
    Ok(ServeReport {
        scale: *scale,
        data_bytes: store.data_bytes(),
        sequential,
        sequential_queries: MIXED_SPECS.len(),
        arms,
    })
}

/// The payload behind `repro --bench-serve-json`.
pub fn serve_json_for_scale(scale: &Scale) -> Result<String> {
    Ok(run_serve_bench(scale)?.to_json())
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A sub-quick scale: the serve bench drives ~350 queries through a
    /// live daemon, which is volume enough that the tests shrink the
    /// graph rather than the concurrency levels under test.
    fn tiny() -> Scale {
        Scale {
            kron_scale: 12,
            edge_factor: 8,
            tile_bits: 8,
            group_side: 4,
            ..Scale::quick()
        }
    }

    #[test]
    fn serve_bench_meets_acceptance_criteria() {
        let r = run_serve_bench(&tiny()).unwrap();
        assert_eq!(r.arms.len(), CLIENTS.len());
        for a in &r.arms {
            let rotation = ROTATIONS_PER_CLIENT * MIXED_SPECS.len();
            assert_eq!(a.queries, a.clients * rotation);
            assert_eq!(
                a.failures, 0,
                "x{}: {} failed replies",
                a.clients, a.failures
            );
            assert_eq!(a.latencies_ns.len(), a.queries);
            assert!(a.latency_ns(0.50) <= a.latency_ns(0.99));
            // Per rotation: 6 sweeps, 3 point reads, per client.
            assert_eq!(
                a.serve.queries_completed,
                (a.clients * ROTATIONS_PER_CLIENT * 6) as u64
            );
            assert_eq!(
                a.serve.point_queries,
                (a.clients * ROTATIONS_PER_CLIENT * 3) as u64
            );
            assert_eq!(a.serve.queries_queued, a.serve.queries_completed);
            assert_eq!(a.serve.query_errors, 0);
        }
        // Concurrent clients must actually share scans: at 8 and 32
        // clients the admitted batches carry more than one query and the
        // per-sweep read amortization clears 1.
        for a in r.arms.iter().filter(|a| a.clients > 1) {
            assert!(
                a.serve.mean_batch_size() > 1.0,
                "x{}: mean batch size {:.2}",
                a.clients,
                a.serve.mean_batch_size()
            );
            assert!(
                a.serve.read_amortization() > 1.0,
                "x{}: read amortization {:.3}",
                a.clients,
                a.serve.read_amortization()
            );
            assert!(a.serve.batches < a.serve.queries_completed);
        }
    }

    #[test]
    fn json_schema_fields_present() {
        // A hand-built report: the schema test must not pay for another
        // full daemon run on top of the acceptance test's.
        let arm = |clients: usize| Arm {
            clients,
            queries: clients * ROTATIONS_PER_CLIENT * MIXED_SPECS.len(),
            failures: 0,
            wall_s: 0.25,
            latencies_ns: vec![1_000; clients * ROTATIONS_PER_CLIENT * MIXED_SPECS.len()],
            serve: ServeMetrics::default(),
        };
        let r = ServeReport {
            scale: tiny(),
            data_bytes: 1 << 20,
            sequential: Measured {
                wall: 1.0,
                io: 0.5,
                bytes: 9 << 16,
            },
            sequential_queries: MIXED_SPECS.len(),
            arms: CLIENTS.iter().map(|&c| arm(c)).collect(),
        };
        let json = r.to_json();
        for key in [
            "gstore-bench-serve-v1",
            "\"sequential\"",
            "\"arms\"",
            "\"clients\": 32",
            "\"qps\"",
            "\"p50_ns\"",
            "\"p99_ns\"",
            "\"mean_batch_size\"",
            "\"read_amortization\"",
            "\"rejected\"",
        ] {
            assert!(json.contains(key), "missing {key} in {json}");
        }
    }
}
