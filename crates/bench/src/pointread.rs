//! The point-read benchmark behind `repro --bench-pointread-json`
//! (`BENCH_pointread.json`): OLTP-style `neighbors(v)` requests served
//! from individual tiles of a simulated SSD array, at 1/4/16 concurrent
//! clients, under a Zipf-skewed and a uniform key stream. Each arm runs
//! on a cold [`PointReader`] and reports tail latency, the hot-tile
//! cache's hit rate, and bytes of storage traffic per request — held
//! against the full-sweep yardstick a scan engine would pay to answer
//! even one such request.

use crate::model::sim_for_store;
use crate::workloads::Scale;
use gstore_core::PointReader;
use gstore_io::StorageBackend;
use gstore_metrics::{FlightRecorder, PointReadMetrics, Recorder};
use gstore_tile::{TileIndex, TileStore};
use std::sync::Arc;
use std::time::Instant;

/// Requests issued per arm.
pub const REQUESTS_PER_ARM: usize = 2048;

/// Concurrency levels measured per key distribution.
pub const CLIENTS: [usize; 3] = [1, 4, 16];

/// Zipf exponent for the skewed arm (s = 1.0, the classic web-request
/// skew; the paper's real graphs are comparably skewed).
pub const ZIPF_EXPONENT: f64 = 1.0;

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e3779b97f4a7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
    z ^ (z >> 31)
}

fn unit_f64(state: &mut u64) -> f64 {
    (splitmix64(state) >> 11) as f64 / (1u64 << 53) as f64
}

/// A Zipf(s) sampler over ranks `0..n` via inverse-CDF binary search.
/// Rank 0 is the most popular key. Ranks map to vertex ids directly, so
/// on Kronecker graphs the hottest keys are the hub vertices — the
/// skewed request stream the hot-tile cache is built for.
pub struct Zipf {
    cdf: Vec<f64>,
}

impl Zipf {
    pub fn new(n: u64, s: f64) -> Zipf {
        let mut cdf = Vec::with_capacity(n as usize);
        let mut acc = 0.0;
        for rank in 1..=n {
            acc += 1.0 / (rank as f64).powf(s);
            cdf.push(acc);
        }
        for c in &mut cdf {
            *c /= acc;
        }
        Zipf { cdf }
    }

    /// Maps a uniform draw in `[0, 1)` to a rank.
    pub fn sample(&self, u: f64) -> u64 {
        self.cdf.partition_point(|&c| c < u) as u64
    }
}

/// Key streams the arms run over.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum KeyDist {
    Zipf,
    Uniform,
}

impl KeyDist {
    fn label(self) -> &'static str {
        match self {
            KeyDist::Zipf => "zipf",
            KeyDist::Uniform => "uniform",
        }
    }
}

fn keys_for(dist: KeyDist, n: u64, count: usize, seed: u64) -> Vec<u64> {
    let mut state = seed;
    match dist {
        KeyDist::Zipf => {
            let zipf = Zipf::new(n, ZIPF_EXPONENT);
            (0..count)
                .map(|_| zipf.sample(unit_f64(&mut state)))
                .collect()
        }
        KeyDist::Uniform => (0..count)
            .map(|_| {
                let draw = splitmix64(&mut state);
                ((draw as u128 * n as u128) >> 64) as u64
            })
            .collect(),
    }
}

/// One `(distribution, clients)` measurement.
#[derive(Debug, Clone)]
pub struct Arm {
    pub dist: &'static str,
    pub clients: usize,
    pub wall_s: f64,
    /// Latencies measured at the request sites, nanoseconds, sorted.
    pub latencies_ns: Vec<u64>,
    /// The recorder's `pointread` group for this arm (cold start).
    pub metrics: PointReadMetrics,
}

impl Arm {
    /// Latency at quantile `q` from the measured (not bucketed) samples.
    pub fn latency_ns(&self, q: f64) -> u64 {
        if self.latencies_ns.is_empty() {
            return 0;
        }
        let rank = (q * (self.latencies_ns.len() - 1) as f64).round() as usize;
        self.latencies_ns[rank]
    }

    pub fn qps(&self) -> f64 {
        self.latencies_ns.len() as f64 / self.wall_s.max(1e-12)
    }

    pub fn bytes_per_query(&self) -> f64 {
        self.metrics.bytes_per_lookup()
    }
}

/// Everything `BENCH_pointread.json` reports.
#[derive(Debug, Clone)]
pub struct PointReadReport {
    pub scale: Scale,
    pub vertex_count: u64,
    pub data_bytes: u64,
    pub cache_bytes: u64,
    pub arms: Vec<Arm>,
}

impl PointReadReport {
    /// Bytes a sweep engine reads to answer any single query: the whole
    /// tile data once.
    pub fn full_sweep_bytes(&self) -> u64 {
        self.data_bytes
    }

    pub fn to_json(&self) -> String {
        let mut arms = String::new();
        for (i, a) in self.arms.iter().enumerate() {
            if i > 0 {
                arms.push_str(",\n    ");
            }
            arms.push_str(&format!(
                "{{ \"dist\": \"{}\", \"clients\": {}, \"p50_ns\": {}, \"p99_ns\": {}, \
                 \"cache_hit_rate\": {:.4}, \"bytes_per_query\": {:.1}, \"lookups\": {}, \
                 \"tiles_fetched\": {}, \"cache_hits\": {}, \"bytes_read\": {}, \
                 \"qps\": {:.0} }}",
                a.dist,
                a.clients,
                a.latency_ns(0.50),
                a.latency_ns(0.99),
                a.metrics.cache_hit_rate(),
                a.bytes_per_query(),
                a.metrics.lookups,
                a.metrics.tiles_fetched,
                a.metrics.cache_hits,
                a.metrics.bytes_read,
                a.qps(),
            ));
        }
        format!(
            "{{\n  \"schema\": \"gstore-bench-pointread-v1\",\n  \"workload\": {{ \
             \"kron_scale\": {}, \"edge_factor\": {}, \"tile_bits\": {}, \"group_side\": {}, \
             \"vertices\": {}, \"data_bytes\": {}, \"cache_bytes\": {}, \
             \"requests_per_arm\": {}, \"zipf_exponent\": {:.2} }},\n  \
             \"full_sweep_bytes\": {},\n  \"arms\": [\n    {}\n  ]\n}}\n",
            self.scale.kron_scale,
            self.scale.edge_factor,
            self.scale.tile_bits,
            self.scale.group_side,
            self.vertex_count,
            self.data_bytes,
            self.cache_bytes,
            REQUESTS_PER_ARM,
            ZIPF_EXPONENT,
            self.full_sweep_bytes(),
            arms,
        )
    }
}

fn index_of(store: &TileStore) -> TileIndex {
    TileIndex::raw(
        store.layout().clone(),
        store.encoding(),
        store.start_edge().to_vec(),
    )
}

/// Runs one arm on a cold reader: `clients` threads share the reader and
/// drain disjoint slices of the key stream, timing each request.
fn run_arm(
    store: &TileStore,
    dist: KeyDist,
    clients: usize,
    cache_bytes: u64,
) -> gstore_graph::Result<Arm> {
    let sim = sim_for_store(store, 2);
    let backend: Arc<dyn StorageBackend> = sim.clone();
    let recorder = Arc::new(FlightRecorder::new());
    let reader = PointReader::with_recorder(
        index_of(store),
        backend,
        cache_bytes,
        Some(Arc::clone(&recorder) as Arc<dyn Recorder>),
    );
    let n = store.layout().tiling().vertex_count();
    let keys = keys_for(dist, n, REQUESTS_PER_ARM, 0x9d2c_5680 ^ clients as u64);

    let start = Instant::now();
    let chunk = keys.len().div_ceil(clients);
    let mut latencies: Vec<u64> = std::thread::scope(|scope| {
        let handles: Vec<_> = keys
            .chunks(chunk)
            .map(|slice| {
                let reader = &reader;
                scope.spawn(move || {
                    let mut lats = Vec::with_capacity(slice.len());
                    for &v in slice {
                        let t = Instant::now();
                        let ns = reader.neighbors(v)?;
                        lats.push(t.elapsed().as_nanos() as u64);
                        std::hint::black_box(ns);
                    }
                    Ok::<_, gstore_graph::GraphError>(lats)
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("client thread panicked"))
            .collect::<gstore_graph::Result<Vec<_>>>()
    })?
    .into_iter()
    .flatten()
    .collect();
    let wall_s = start.elapsed().as_secs_f64();
    latencies.sort_unstable();

    Ok(Arm {
        dist: dist.label(),
        clients,
        wall_s,
        latencies_ns: latencies,
        metrics: recorder.snapshot().pointread,
    })
}

/// Runs every `(distribution, clients)` arm at `scale`.
pub fn run_pointread(scale: &Scale) -> gstore_graph::Result<PointReadReport> {
    let el = scale.kron();
    let store = scale.store(&el);
    // Half the data fits in cache. On a scale-free graph the hub rows
    // hold most of the edge bytes, so anything much smaller cannot keep
    // the Zipf stream's working set resident; half is enough for the
    // skewed arm to serve mostly from memory while the uniform arm still
    // churns — the contrast the report is after.
    let cache_bytes = (store.data_bytes() / 2).max(64 << 10);
    let mut arms = Vec::new();
    for dist in [KeyDist::Zipf, KeyDist::Uniform] {
        for clients in CLIENTS {
            arms.push(run_arm(&store, dist, clients, cache_bytes)?);
        }
    }
    Ok(PointReadReport {
        scale: *scale,
        vertex_count: store.layout().tiling().vertex_count(),
        data_bytes: store.data_bytes(),
        cache_bytes,
        arms,
    })
}

/// The payload behind `repro --bench-pointread-json`.
pub fn pointread_json_for_scale(scale: &Scale) -> gstore_graph::Result<String> {
    Ok(run_pointread(scale)?.to_json())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zipf_sampler_is_skewed_and_in_range() {
        let zipf = Zipf::new(1000, 1.0);
        let mut state = 7u64;
        let mut head = 0usize;
        for _ in 0..4096 {
            let r = zipf.sample(unit_f64(&mut state));
            assert!(r < 1000);
            if r < 10 {
                head += 1;
            }
        }
        // Zipf(1.0) puts ~39% of the mass on the top-10 ranks of 1000;
        // a uniform stream would put 1% there.
        assert!(head > 4096 / 5, "top-10 ranks drew only {head}/4096");
    }

    #[test]
    fn pointread_meets_acceptance_criteria_at_quick_scale() {
        let r = run_pointread(&Scale::quick()).unwrap();
        assert_eq!(r.arms.len(), 2 * CLIENTS.len());
        for a in &r.arms {
            assert_eq!(a.metrics.lookups as usize, REQUESTS_PER_ARM);
            assert_eq!(a.latencies_ns.len(), REQUESTS_PER_ARM);
            assert!(a.latency_ns(0.50) <= a.latency_ns(0.99));
            // Even the cache-hostile uniform stream reads far less than a
            // sweep per query.
            assert!(
                a.bytes_per_query() * 4.0 < r.full_sweep_bytes() as f64,
                "{}x{}: {} bytes/query vs {} full sweep",
                a.dist,
                a.clients,
                a.bytes_per_query(),
                r.full_sweep_bytes()
            );
        }
        // The skewed stream keeps its hot tiles resident and its storage
        // traffic per query is a rounding error next to a sweep.
        for a in r.arms.iter().filter(|a| a.dist == "zipf") {
            assert!(
                a.metrics.cache_hit_rate() > 0.5,
                "zipf x{} hit rate {:.3}",
                a.clients,
                a.metrics.cache_hit_rate()
            );
            assert!(
                a.bytes_per_query() * 20.0 < r.full_sweep_bytes() as f64,
                "zipf x{}: {} bytes/query",
                a.clients,
                a.bytes_per_query()
            );
        }
    }

    #[test]
    fn json_schema_fields_present() {
        let json = pointread_json_for_scale(&Scale::quick()).unwrap();
        for key in [
            "gstore-bench-pointread-v1",
            "\"full_sweep_bytes\"",
            "\"arms\"",
            "\"p50_ns\"",
            "\"p99_ns\"",
            "\"cache_hit_rate\"",
            "\"bytes_per_query\"",
            "\"clients\": 16",
            "\"dist\": \"uniform\"",
        ] {
            assert!(json.contains(key), "missing {key} in {json}");
        }
    }
}
