//! The shared-scan multi-query benchmark behind `repro --bench-mq-json`
//! (`BENCH_mq.json`): K mixed queries run once back-to-back — one engine
//! and one full scan sequence each — and once admitted together into a
//! single [`QueryBatch`], over identical simulated SSD arrays. The report
//! compares aggregate runtime and storage traffic, and reconciles the
//! engine's per-query [`RunStats`] with the flight recorder's
//! `query_batch` counter group.

use crate::model::{sim_for_store, Measured};
use crate::workloads::{degrees, Scale};
use gstore_core::{Algorithm, GStoreEngine, QueryBatch, QuerySpec, RunStats};
use gstore_graph::Result;
use gstore_io::StorageBackend;
use gstore_scr::ScrConfig;
use gstore_tile::{TileIndex, TileStore, Tiling};
use std::sync::Arc;
use std::time::Instant;

/// Queries admitted to the batch arm (also the sequential arm's count).
pub const QUERY_COUNT: usize = 8;

/// A mixed workload: traversal (2 BFS roots), label propagation (2 WCC),
/// ranking at two horizons, a peel, and a sweep — exercising selective
/// frontiers, full sweeps, and different convergence points side by side.
/// The specs are text so this harness exercises the same typed
/// [`QuerySpec`] parse path as `gstore batch` and `gstore serve`.
const MIXED_SPECS: [&str; QUERY_COUNT] = [
    "bfs:0",
    "bfs:1",
    "wcc",
    "wcc",
    "pagerank:5",
    "pagerank:3",
    "kcore:2",
    "degrees",
];

fn mixed_queries(tiling: Tiling, deg: &[u64]) -> Vec<(&'static str, Box<dyn Algorithm>)> {
    MIXED_SPECS
        .iter()
        .map(|label| {
            let spec: QuerySpec = label.parse().expect("mixed workload specs parse");
            let alg = spec
                .to_algorithm(tiling, Some(deg))
                .expect("mixed workload specs are sweeps");
            (*label, alg)
        })
        .collect()
}

fn index_of(store: &TileStore) -> TileIndex {
    TileIndex::raw(
        store.layout().clone(),
        store.encoding(),
        store.start_edge().to_vec(),
    )
}

fn mq_builder(store: &TileStore) -> Result<gstore_core::EngineBuilder> {
    // The same memory policy as the instrumented single-query benches:
    // segments of data/8, pool of data/2 — a genuinely semi-external run.
    let seg = (store.data_bytes() / 8).max(4096);
    let total = store.data_bytes() / 2 + 2 * seg + 4096;
    Ok(GStoreEngine::builder().scr(ScrConfig::new(seg, total)?))
}

/// One query's sequential-arm observation.
#[derive(Debug, Clone)]
pub struct SoloRun {
    pub label: &'static str,
    pub stats: RunStats,
    pub measured: Measured,
}

/// Everything `BENCH_mq.json` reports; the acceptance criteria are
/// assertions over these fields.
#[derive(Debug, Clone)]
pub struct MultiQueryReport {
    pub scale: Scale,
    pub data_bytes: u64,
    pub solos: Vec<SoloRun>,
    /// Per-query outcomes inside the batch, in admission (slot) order.
    pub batch_queries: Vec<gstore_core::QueryOutcome>,
    pub batch_stats: gstore_core::BatchRunStats,
    pub batch_measured: Measured,
    /// Aggregate sequential runtime (sum of per-query `Measured::runtime`).
    pub sequential_runtime: f64,
    pub sequential_bytes: u64,
    /// Bytes of the heaviest single sequential query — the "one sweep"
    /// yardstick the batch's traffic is held against.
    pub heaviest_solo_bytes: u64,
    /// True iff the flight recorder's `query_batch` group reconciles with
    /// the engine's own per-query and batch accounting.
    pub recorder_reconciles: bool,
}

impl MultiQueryReport {
    /// Aggregate speedup of the shared scan over sequential execution.
    pub fn speedup(&self) -> f64 {
        self.sequential_runtime / self.batch_measured.runtime().max(1e-12)
    }

    /// Batch storage traffic relative to the heaviest single query.
    pub fn bytes_ratio(&self) -> f64 {
        self.batch_measured.bytes as f64 / self.heaviest_solo_bytes.max(1) as f64
    }

    pub fn to_json(&self) -> String {
        let mut per_query = String::new();
        for (i, (solo, q)) in self.solos.iter().zip(&self.batch_queries).enumerate() {
            if i > 0 {
                per_query.push_str(",\n    ");
            }
            per_query.push_str(&format!(
                "{{ \"label\": \"{}\", \"iterations\": {}, \"converged\": {}, \
                 \"solo_bytes\": {}, \"batch_bytes\": {}, \"solo_runtime_s\": {:.6} }}",
                solo.label,
                q.stats.iterations,
                q.converged,
                solo.stats.bytes_read,
                q.stats.bytes_read,
                solo.measured.runtime(),
            ));
        }
        format!(
            "{{\n  \"schema\": \"gstore-bench-mq-v1\",\n  \"workload\": {{ \"kron_scale\": {}, \
             \"edge_factor\": {}, \"tile_bits\": {}, \"group_side\": {}, \"data_bytes\": {}, \
             \"queries\": {} }},\n  \
             \"sequential\": {{ \"runtime_s\": {:.6}, \"bytes\": {} }},\n  \
             \"batch\": {{ \"runtime_s\": {:.6}, \"bytes\": {}, \"sweeps\": {}, \
             \"tiles_shared\": {}, \"bytes_amortized\": {}, \"read_amortization\": {:.4} }},\n  \
             \"speedup\": {:.4},\n  \"bytes_vs_heaviest_query\": {:.4},\n  \
             \"recorder_reconciles\": {},\n  \"per_query\": [\n    {}\n  ]\n}}\n",
            self.scale.kron_scale,
            self.scale.edge_factor,
            self.scale.tile_bits,
            self.scale.group_side,
            self.data_bytes,
            self.solos.len(),
            self.sequential_runtime,
            self.sequential_bytes,
            self.batch_measured.runtime(),
            self.batch_measured.bytes,
            self.batch_stats.sweeps,
            self.batch_stats.tiles_shared,
            self.batch_stats.bytes_amortized,
            self.batch_stats.read_amortization(),
            self.speedup(),
            self.bytes_ratio(),
            self.recorder_reconciles,
            per_query,
        )
    }
}

/// Runs both arms at `scale` and returns the full report.
pub fn run_multiquery(scale: &Scale) -> Result<MultiQueryReport> {
    let el = scale.kron();
    let store = scale.store(&el);
    let deg = degrees(&el);
    let tiling = *store.layout().tiling();
    let devices = 2;

    // Sequential arm: each query gets a fresh engine over a fresh array,
    // exactly what running them back-to-back costs.
    let mut solos = Vec::new();
    for (label, mut alg) in mixed_queries(tiling, &deg) {
        let sim = sim_for_store(&store, devices);
        let backend: Arc<dyn StorageBackend> = sim.clone();
        let mut engine = mq_builder(&store)?
            .backend(index_of(&store), backend)
            .build()?;
        let start = Instant::now();
        let stats = engine.run(alg.as_mut(), u32::MAX)?;
        let wall = start.elapsed().as_secs_f64();
        let s = sim.stats();
        solos.push(SoloRun {
            label,
            stats,
            measured: Measured {
                wall,
                io: s.elapsed,
                bytes: s.total_bytes,
            },
        });
    }

    // Batch arm: the same K queries admitted together; the union of their
    // frontiers drives one scan per sweep. Instrumented, so the flight
    // recorder's query_batch group can be reconciled below.
    let sim = sim_for_store(&store, devices);
    let backend: Arc<dyn StorageBackend> = sim.clone();
    let mut engine = mq_builder(&store)?
        .backend(index_of(&store), backend)
        .metrics(true)
        .build()?;
    let mut algs = mixed_queries(tiling, &deg);
    let mut batch = QueryBatch::new();
    for (_, alg) in &mut algs {
        batch.push(alg.as_mut())?;
    }
    let start = Instant::now();
    let batch_stats = engine.run_batch(&mut batch, u32::MAX)?;
    let wall = start.elapsed().as_secs_f64();
    let s = sim.stats();
    let batch_measured = Measured {
        wall,
        io: s.elapsed,
        bytes: s.total_bytes,
    };

    let qb = engine.metrics().expect("metrics enabled").query_batch;
    let per_query_ok = qb.queries.len() == batch_stats.per_query.len()
        && qb.queries.iter().all(|rec| {
            let q = &batch_stats.per_query[rec.query as usize];
            q.name == rec.name
                && q.stats.iterations == rec.iterations
                && q.converged == rec.converged
        });
    let recorder_reconciles = per_query_ok
        && qb.sweeps.len() as u32 == batch_stats.sweeps
        && qb.tiles_shared() == batch_stats.tiles_shared
        && qb.bytes_amortized() == batch_stats.bytes_amortized
        && qb.bytes_read() == batch_stats.aggregate.bytes_read;

    let sequential_runtime = solos.iter().map(|s| s.measured.runtime()).sum();
    let sequential_bytes = solos.iter().map(|s| s.measured.bytes).sum();
    let heaviest_solo_bytes = solos.iter().map(|s| s.measured.bytes).max().unwrap_or(0);
    Ok(MultiQueryReport {
        scale: *scale,
        data_bytes: store.data_bytes(),
        solos,
        batch_queries: batch_stats.per_query.clone(),
        batch_stats,
        batch_measured,
        sequential_runtime,
        sequential_bytes,
        heaviest_solo_bytes,
        recorder_reconciles,
    })
}

/// The payload behind `repro --bench-mq-json`.
pub fn multiquery_json_for_scale(scale: &Scale) -> Result<String> {
    Ok(run_multiquery(scale)?.to_json())
}

#[cfg(test)]
mod tests {
    use super::*;
    use gstore_core::{Bfs, PageRank, Wcc};

    #[test]
    fn shared_scan_meets_acceptance_criteria_at_quick_scale() {
        let r = run_multiquery(&Scale::quick()).unwrap();
        assert_eq!(r.solos.len(), QUERY_COUNT);
        assert_eq!(r.batch_queries.len(), QUERY_COUNT);
        assert!(r.batch_stats.all_converged(), "every query must converge");
        // The batch reads at most 1.25x the heaviest single query's
        // traffic (the scan is shared, not multiplied)...
        assert!(
            r.bytes_ratio() <= 1.25,
            "batch read {:.2}x the heaviest query",
            r.bytes_ratio()
        );
        // ...and amortizes the modelled array time by >= 2x — this part
        // is deterministic: K queries' traffic collapses towards one
        // sweep's worth regardless of host speed.
        let io_speedup =
            r.solos.iter().map(|s| s.measured.io).sum::<f64>() / r.batch_measured.io.max(1e-12);
        assert!(
            io_speedup >= 2.0,
            "modelled array time must amortize: {:.2}x",
            io_speedup
        );
        // The end-to-end speedup folds in host compute (`runtime()` is
        // max(wall, io)), which only reflects the I/O saving when the
        // solos are actually I/O-bound; on a slow or single-core host
        // their compute wall dominates and the ratio tends to 1.
        if r.solos.iter().all(|s| s.measured.io >= s.measured.wall) {
            assert!(
                r.speedup() >= 2.0,
                "aggregate speedup only {:.2}x",
                r.speedup()
            );
        }
        assert!(r.recorder_reconciles, "flight recorder must reconcile");
    }

    #[test]
    fn batch_results_match_sequential_results() {
        // Same queries, same store: every query's metadata must come out
        // of the batch exactly as it does from its solo run.
        let scale = Scale::quick();
        let el = scale.kron();
        let store = scale.store(&el);
        let deg = degrees(&el);
        let tiling = *store.layout().tiling();

        let mut solo_wcc = Wcc::new(tiling);
        let mut engine = mq_builder(&store).unwrap().store(&store).build().unwrap();
        engine.run(&mut solo_wcc, u32::MAX).unwrap();

        let mut bfs = Bfs::new(tiling, 0);
        let mut wcc = Wcc::new(tiling);
        let mut pr = PageRank::new(tiling, deg.clone(), 0.85).with_iterations(4);
        let mut engine = mq_builder(&store).unwrap().store(&store).build().unwrap();
        let mut batch = QueryBatch::new();
        batch.push(&mut bfs).unwrap();
        batch.push(&mut wcc).unwrap();
        batch.push(&mut pr).unwrap();
        let out = engine.run_batch(&mut batch, u32::MAX).unwrap();
        assert!(out.all_converged());
        assert_eq!(wcc.labels(), solo_wcc.labels());
    }

    #[test]
    fn json_schema_fields_present() {
        let json = multiquery_json_for_scale(&Scale::quick()).unwrap();
        for key in [
            "gstore-bench-mq-v1",
            "\"sequential\"",
            "\"batch\"",
            "\"speedup\"",
            "\"bytes_vs_heaviest_query\"",
            "\"recorder_reconciles\": true",
            "\"tiles_shared\"",
            "\"bytes_amortized\"",
            "\"per_query\"",
        ] {
            assert!(json.contains(key), "missing {key} in {json}");
        }
    }
}
