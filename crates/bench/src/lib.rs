//! Benchmark harness library: workload builders, the storage-time model,
//! table formatting, and one module per table/figure of the paper.
//!
//! The `repro` binary (`cargo run -p bench --release --bin repro -- <exp>`)
//! drives [`experiments`]; the criterion benches under `benches/` reuse
//! [`workloads`].

pub mod codec;
pub mod compute;
pub mod experiments;
pub mod ingest;
pub mod io;
pub mod model;
pub mod multiquery;
pub mod pointread;
pub mod serve;
pub mod slide;
pub mod table;
pub mod workloads;

/// Counting allocator for the slide-path arms: lets `BENCH_slide.json`
/// report allocator traffic removed by the zero-copy pipeline. Counting
/// is two relaxed atomic adds per allocation — invisible next to the
/// allocations themselves.
#[global_allocator]
static GLOBAL_ALLOC: slide::CountingAlloc = slide::CountingAlloc;
