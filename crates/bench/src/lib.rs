//! Benchmark harness library: workload builders, the storage-time model,
//! table formatting, and one module per table/figure of the paper.
//!
//! The `repro` binary (`cargo run -p bench --release --bin repro -- <exp>`)
//! drives [`experiments`]; the criterion benches under `benches/` reuse
//! [`workloads`].

pub mod experiments;
pub mod model;
pub mod table;
pub mod workloads;
