//! Tile-codec measurement arms: bytes/edge and end-to-end runtime per
//! [`gstore_tile::Codec`], plus the `BENCH_codec.json` emitter.
//!
//! Every arm encodes the same SNB store with one codec, then measures
//! three things: the on-disk footprint (bytes per logical edge), raw
//! decode throughput through [`Codec::cursor`], and an end-to-end
//! PageRank run where the engine streams the *coded* blob from the
//! scaled SSD-array simulator and decodes tiles on the fly. The SCR
//! budget is derived from the raw store for every arm, so cache pressure
//! is identical and the only variable is the codec — smaller streams buy
//! less simulated I/O time at the cost of decode compute, which is
//! exactly the trade `BENCH_codec.json` quantifies.

use crate::model::{sim_for_blob, Measured};
use crate::workloads::{degrees, Scale};
use gstore_core::{GStoreEngine, PageRank};
use gstore_graph::Result;
use gstore_metrics::EngineMetrics;
use gstore_tile::{encode_store, Codec, TileStore};
use std::sync::Arc;
use std::time::Instant;

/// One measured codec arm.
#[derive(Debug, Clone)]
pub struct CodecArmMeasure {
    pub codec: Codec,
    /// Bytes the coded tile streams occupy on disk.
    pub disk_bytes: u64,
    /// Raw SNB bytes the store represents (edges × 4).
    pub logical_bytes: u64,
    pub edge_count: u64,
    /// Wall seconds to cursor-decode every tile of the store once.
    pub decode_wall_s: f64,
    /// End-to-end engine PageRank over the coded blob on the simulated
    /// array.
    pub pagerank: Measured,
    /// Flight-recorder `codec` group from the engine run.
    pub tiles_decoded: u64,
    pub decode_ns: u64,
}

impl CodecArmMeasure {
    /// On-disk bytes per logical edge.
    pub fn bytes_per_edge(&self) -> f64 {
        if self.edge_count == 0 {
            0.0
        } else {
            self.disk_bytes as f64 / self.edge_count as f64
        }
    }

    /// Logical / disk (1.0 for the raw arm).
    pub fn compression_ratio(&self) -> f64 {
        if self.disk_bytes == 0 {
            1.0
        } else {
            self.logical_bytes as f64 / self.disk_bytes as f64
        }
    }

    /// Cursor-decode throughput in million edges per second.
    pub fn decode_medges_per_s(&self) -> f64 {
        self.edge_count as f64 / self.decode_wall_s.max(1e-12) / 1e6
    }
}

/// Cursor-decodes every tile of a coded blob once (block API, the sweep
/// engine's decode path) and returns the wall time. The XOR sink keeps
/// the loop from being optimised away.
pub fn decode_all_tiles(
    index: &gstore_tile::TileIndex,
    data: &[u8],
    codec: Codec,
) -> Result<(f64, u64)> {
    let mut sink = 0u32;
    let mut edges = 0u64;
    let mut block = [0u32; 256];
    let t0 = Instant::now();
    for idx in 0..index.tile_count() {
        let r = index.tile_byte_range(idx);
        let mut cur = codec.cursor(&data[r.start as usize..r.end as usize])?;
        loop {
            let n = cur.next_block(&mut block);
            if n == 0 {
                break;
            }
            edges += n as u64;
            for k in &block[..n] {
                sink ^= *k;
            }
        }
    }
    let wall = t0.elapsed().as_secs_f64();
    std::hint::black_box(sink);
    Ok((wall, edges))
}

/// Encodes `store` with `codec` and measures footprint, decode
/// throughput, and an end-to-end engine PageRank (5 iterations, 2
/// simulated SSDs, SCR budget derived from the *raw* store so all arms
/// see identical cache pressure). Returns the measure plus the final
/// ranks so callers can check the arms agree.
pub fn run_codec_arm(
    store: &TileStore,
    deg: &[u64],
    codec: Codec,
) -> Result<(CodecArmMeasure, Vec<f64>)> {
    let (index, data) = encode_store(store, codec)?;
    let disk_bytes = index.data_bytes();
    let logical_bytes = index.logical_bytes();
    let edge_count = index.edge_count();

    let (decode_wall_s, decoded) = decode_all_tiles(&index, &data, codec)?;
    debug_assert_eq!(decoded, edge_count);

    let seg = (store.data_bytes() / 8).max(4096);
    let total = store.data_bytes() / 2 + 2 * seg + 4096;
    let sim = sim_for_blob(data, 2);
    let backend: Arc<dyn gstore_io::StorageBackend> = sim.clone();
    let mut engine = GStoreEngine::builder()
        .scr(gstore_scr::ScrConfig::new(seg, total)?)
        .metrics(true)
        .backend(index, backend)
        .build()?;
    let tiling = *store.layout().tiling();
    let mut pr = PageRank::new(tiling, deg.to_vec(), 0.85).with_iterations(5);
    let t0 = Instant::now();
    engine.run(&mut pr, 5)?;
    let wall = t0.elapsed().as_secs_f64();
    let s = sim.stats();
    let metrics: EngineMetrics = engine.metrics().expect("metrics enabled");
    Ok((
        CodecArmMeasure {
            codec,
            disk_bytes,
            logical_bytes,
            edge_count,
            decode_wall_s,
            pagerank: Measured {
                wall,
                io: s.elapsed,
                bytes: s.total_bytes,
            },
            tiles_decoded: metrics.codec.tiles_decoded,
            decode_ns: metrics.codec.decode_ns,
        },
        pr.ranks().to_vec(),
    ))
}

fn arm_json(m: &CodecArmMeasure, varint_bpe: f64) -> String {
    format!(
        "{{ \"disk_bytes\": {}, \"bytes_per_edge\": {:.4}, \"compression_ratio\": {:.4}, \
         \"vs_varint\": {:.4}, \"decode_medges_per_s\": {:.2}, \"pagerank_wall_s\": {:.6}, \
         \"pagerank_io_s\": {:.6}, \"pagerank_runtime_s\": {:.6}, \"io_bytes\": {}, \
         \"tiles_decoded\": {}, \"decode_ns\": {} }}",
        m.disk_bytes,
        m.bytes_per_edge(),
        m.compression_ratio(),
        varint_bpe / m.bytes_per_edge().max(1e-12),
        m.decode_medges_per_s(),
        m.pagerank.wall,
        m.pagerank.io,
        m.pagerank.runtime(),
        m.pagerank.bytes,
        m.tiles_decoded,
        m.decode_ns,
    )
}

/// Runs every codec arm at `scale` and renders the `BENCH_codec.json`
/// payload: per-codec footprint, decode throughput, and end-to-end
/// PageRank times, plus the best bit-codec's bytes/edge advantage over
/// the byte-aligned varint baseline.
pub fn codec_json_for_scale(scale: &Scale) -> Result<String> {
    let el = scale.kron();
    let store = scale.store(&el);
    let deg = degrees(&el);

    let mut arms = Vec::with_capacity(Codec::ALL.len());
    let mut raw_ranks: Option<Vec<f64>> = None;
    for codec in Codec::ALL {
        let (m, ranks) = run_codec_arm(&store, &deg, codec)?;
        match &raw_ranks {
            None => raw_ranks = Some(ranks),
            Some(want) => {
                // Every codec must compute the identical fixed point.
                for (a, b) in ranks.iter().zip(want) {
                    debug_assert!((a - b).abs() < 1e-9, "{}: {a} vs {b}", codec.name());
                }
            }
        }
        arms.push(m);
    }

    let bpe = |c: Codec| -> f64 {
        arms.iter()
            .find(|m| m.codec == c)
            .map(|m| m.bytes_per_edge())
            .unwrap_or(0.0)
    };
    let varint_bpe = bpe(Codec::DeltaVarint);
    let best_bit_bpe = [Codec::GammaGap, Codec::ZetaGap, Codec::EliasFano]
        .into_iter()
        .map(bpe)
        .fold(f64::INFINITY, f64::min);

    let mut body = String::new();
    for m in &arms {
        body.push_str(&format!(
            "  \"{}\": {},\n",
            m.codec.name(),
            arm_json(m, varint_bpe)
        ));
    }

    Ok(format!(
        "{{\n  \"schema\": \"gstore-bench-codec-v1\",\n  \"workload\": {{ \"kron_scale\": {}, \
         \"edge_factor\": {}, \"tile_bits\": {}, \"group_side\": {}, \"raw_bytes\": {}, \
         \"edges\": {}, \"pagerank_iters\": 5, \"devices\": 2 }},\n{}  \
         \"best_bit_vs_varint\": {:.4}\n}}\n",
        scale.kron_scale,
        scale.edge_factor,
        scale.tile_bits,
        scale.group_side,
        store.data_bytes(),
        store.edge_count(),
        body,
        varint_bpe / best_bit_bpe.max(1e-12),
    ))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arms_agree_on_ranks_and_coded_arms_shrink() {
        let s = Scale::quick();
        let el = s.kron();
        let store = s.store(&el);
        let deg = degrees(&el);
        let (raw, ranks_raw) = run_codec_arm(&store, &deg, Codec::RawSnb).unwrap();
        assert_eq!(raw.disk_bytes, store.data_bytes());
        assert_eq!(raw.tiles_decoded, 0); // raw tiles skip the decode hook
        for codec in Codec::CODED {
            let (m, ranks) = run_codec_arm(&store, &deg, codec).unwrap();
            assert!(m.disk_bytes < raw.disk_bytes, "{}", codec.name());
            assert!(m.compression_ratio() > 1.0);
            assert!(m.tiles_decoded > 0, "{}", codec.name());
            assert!(m.pagerank.bytes < raw.pagerank.bytes, "{}", codec.name());
            for (a, b) in ranks.iter().zip(&ranks_raw) {
                assert!((a - b).abs() < 1e-9, "{}: {a} vs {b}", codec.name());
            }
        }
    }

    #[test]
    fn codec_json_has_schema_and_every_codec() {
        let s = Scale::quick();
        let json = codec_json_for_scale(&s).unwrap();
        for key in [
            "\"schema\": \"gstore-bench-codec-v1\"",
            "\"raw\"",
            "\"varint\"",
            "\"gamma\"",
            "\"zeta\"",
            "\"ef\"",
            "\"bytes_per_edge\"",
            "\"vs_varint\"",
            "\"decode_medges_per_s\"",
            "\"pagerank_runtime_s\"",
            "\"best_bit_vs_varint\"",
        ] {
            assert!(json.contains(key), "missing {key} in {json}");
        }
    }

    #[test]
    fn bit_codecs_beat_varint_at_default_scale_geometry() {
        // The acceptance bar: at the default bench geometry (tile_bits
        // 11), the best bit-level codec must save ≥1.3x over varint.
        // Run it on a smaller kron at the same tile geometry to keep the
        // test fast; gap statistics per tile are what matter.
        let s = Scale {
            kron_scale: 16,
            edge_factor: 16,
            divisor: 512,
            tile_bits: 11,
            group_side: 16,
        };
        let el = s.kron();
        let store = s.store(&el);
        let deg = degrees(&el);
        let (varint, _) = run_codec_arm(&store, &deg, Codec::DeltaVarint).unwrap();
        let best = Codec::CODED
            .into_iter()
            .filter(|c| *c != Codec::DeltaVarint)
            .map(|c| run_codec_arm(&store, &deg, c).unwrap().0.bytes_per_edge())
            .fold(f64::INFINITY, f64::min);
        let ratio = varint.bytes_per_edge() / best;
        assert!(
            ratio >= 1.3,
            "best bit codec only {ratio:.3}x vs varint ({} vs {best})",
            varint.bytes_per_edge()
        );
    }
}
