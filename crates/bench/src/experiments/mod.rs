//! One module per group of paper experiments. Each public function prints
//! a table mirroring the paper's figure/table and a note stating what the
//! paper reported, so the shape comparison is visible at a glance.

pub mod ablation;
pub mod comparison;
pub mod extensions;
pub mod format;
pub mod motivation;

use crate::workloads::Scale;

/// Experiment registry: (name, description, runner).
pub type Runner = fn(&Scale);

/// All experiments in paper order.
pub fn registry() -> Vec<(&'static str, &'static str, Runner)> {
    vec![
        (
            "fig2a",
            "X-Stream PageRank vs edge-tuple size",
            motivation::fig2a as Runner,
        ),
        (
            "fig2b",
            "in-memory PageRank vs partition count",
            motivation::fig2b,
        ),
        (
            "fig2c",
            "PageRank vs streaming-memory size",
            motivation::fig2c,
        ),
        (
            "fig5",
            "tile occupancy distribution (Twitter-like)",
            format::fig5,
        ),
        ("table1", "conversion time: CSR vs G-Store", format::table1),
        ("table2", "storage sizes and saving factors", format::table2),
        (
            "fig7",
            "physical-group occupancy (Twitter-like)",
            format::fig7,
        ),
        (
            "table3",
            "largest-scale runs (BFS/PageRank/WCC)",
            comparison::table3,
        ),
        ("fig9", "G-Store vs FlashGraph", comparison::fig9),
        (
            "xstream",
            "G-Store vs X-Stream",
            comparison::xstream_comparison,
        ),
        ("fig10", "speedup from space saving", ablation::fig10),
        ("fig11", "in-memory speedup from grouping", ablation::fig11),
        (
            "fig12",
            "LLC operations/misses vs grouping",
            ablation::fig12,
        ),
        ("fig13", "SCR vs base policy", ablation::fig13),
        ("fig14", "effect of cache size", ablation::fig14),
        ("fig15", "scalability on SSDs", ablation::fig15),
        (
            "ext-compress",
            "EXT: per-tile delta compression",
            extensions::ext_compress,
        ),
        (
            "ext-gridgraph",
            "EXT: vs GridGraph-style engine",
            extensions::ext_gridgraph,
        ),
        (
            "ext-tiered",
            "EXT: tiered SSD+HDD storage",
            extensions::ext_tiered,
        ),
        (
            "ext-algorithms",
            "EXT: async BFS and delta PageRank",
            extensions::ext_algorithms,
        ),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_covers_every_table_and_figure() {
        let names: Vec<&str> = registry().iter().map(|(n, _, _)| *n).collect();
        for expected in [
            "fig2a",
            "fig2b",
            "fig2c",
            "fig5",
            "fig7",
            "fig9",
            "fig10",
            "fig11",
            "fig12",
            "fig13",
            "fig14",
            "fig15",
            "table1",
            "table2",
            "table3",
            "xstream",
            "ext-compress",
            "ext-tiered",
            "ext-algorithms",
            "ext-gridgraph",
        ] {
            assert!(names.contains(&expected), "missing {expected}");
        }
        assert_eq!(names.len(), 20);
    }
}

#[cfg(test)]
mod smoke {
    use super::*;

    /// Runs every registered experiment end to end at smoke scale. Slow
    /// (~1-2 minutes in release); opt in with `-- --ignored`.
    #[test]
    #[ignore = "runs the full experiment suite at quick scale"]
    fn every_experiment_runs_at_quick_scale() {
        let scale = Scale::quick();
        for (name, _, run) in registry() {
            eprintln!("[smoke] {name}");
            run(&scale);
        }
    }
}
