//! Cross-engine comparisons: Figure 9 (vs FlashGraph), the §VII.B
//! X-Stream speedups, and Table III (largest-scale runs).

use crate::model::{fmt_secs, fmt_x, run_gstore_on_sim, sim_for_blob, Measured};
use crate::table::{note, print_table};
use crate::workloads::{degrees, Scale};
use gstore_baselines::flashgraph::{self, FlashGraphConfig, FlashGraphEngine};
use gstore_baselines::xstream::{self, XStreamConfig, XStreamEngine};
use gstore_core::{Bfs, EngineBuilder, GStoreEngine, PageRank, Wcc};
use gstore_graph::EdgeList;
use gstore_scr::ScrConfig;
use std::time::Instant;

const PR_ITERS: u32 = 5;
const DEVICES: usize = 4;

/// Memory budget shared by the semi-external engines: half the graph.
fn budget(data_bytes: u64) -> u64 {
    (data_bytes / 2).max(64 << 10)
}

fn gstore_config(store_bytes: u64) -> EngineBuilder {
    let total = budget(store_bytes) + 2 * SEGMENT;
    GStoreEngine::builder().scr(ScrConfig::new(SEGMENT, total).unwrap())
}

const SEGMENT: u64 = 256 << 10;

struct EngineTimes {
    bfs: Measured,
    pr: Measured,
    wcc: Measured,
}

fn run_gstore(scale: &Scale, el: &EdgeList) -> EngineTimes {
    let store = scale.store(el);
    let deg = degrees(el);
    let tiling = *store.layout().tiling();
    let cfg = gstore_config(store.data_bytes());
    let mut bfs = Bfs::new(tiling, 0);
    let (_, m_bfs) = run_gstore_on_sim(&store, cfg.clone(), DEVICES, &mut bfs, 10_000).unwrap();
    let mut pr = PageRank::new(tiling, deg, 0.85).with_iterations(PR_ITERS);
    let (_, m_pr) = run_gstore_on_sim(&store, cfg.clone(), DEVICES, &mut pr, PR_ITERS).unwrap();
    let mut wcc = Wcc::new(tiling);
    let (_, m_wcc) = run_gstore_on_sim(&store, cfg, DEVICES, &mut wcc, 10_000).unwrap();
    EngineTimes {
        bfs: m_bfs,
        pr: m_pr,
        wcc: m_wcc,
    }
}

fn run_flashgraph(el: &EdgeList) -> EngineTimes {
    let (meta, blob) = flashgraph::build(el).unwrap();
    let data_bytes = blob.len() as u64;
    let sim = sim_for_blob(blob, DEVICES);
    let cfg = FlashGraphConfig {
        page_bytes: 4096,
        cache_bytes: budget(data_bytes),
    };
    let mut eng = FlashGraphEngine::new(meta, sim.clone(), cfg).unwrap();
    let mut run = |f: &mut dyn FnMut(&mut FlashGraphEngine)| {
        sim.reset();
        let start = Instant::now();
        f(&mut eng);
        let wall = start.elapsed().as_secs_f64();
        let s = sim.stats();
        Measured {
            wall,
            io: s.elapsed,
            bytes: s.total_bytes,
        }
    };
    let bfs = run(&mut |e| {
        e.bfs(0).unwrap();
    });
    let pr = run(&mut |e| {
        e.pagerank(PR_ITERS, 0.85).unwrap();
    });
    let wcc = run(&mut |e| {
        e.wcc().unwrap();
    });
    EngineTimes { bfs, pr, wcc }
}

fn run_xstream(el: &EdgeList) -> EngineTimes {
    let run_one = |which: u8| {
        let (meta, blob) = xstream::build(el, XStreamConfig::new(8).unwrap()).unwrap();
        let sim = sim_for_blob(blob, DEVICES);
        let eng = XStreamEngine::new(meta, sim.clone()).unwrap();
        let start = Instant::now();
        let stats = match which {
            0 => eng.bfs(0).unwrap().1,
            1 => eng.pagerank(PR_ITERS, 0.85).unwrap().1,
            _ => eng.wcc().unwrap().1,
        };
        let wall = start.elapsed().as_secs_f64();
        sim.charge_stream(
            stats.update_bytes_written + stats.update_bytes_read,
            1 << 20,
        );
        let s = sim.stats();
        Measured {
            wall,
            io: s.elapsed,
            bytes: s.total_bytes,
        }
    };
    EngineTimes {
        bfs: run_one(0),
        pr: run_one(1),
        wcc: run_one(2),
    }
}

/// At paper scale (data many times larger than memory) every engine is
/// storage-bound, so the headline speedup compares simulated array time
/// for each engine's actual traffic; wall-clock ratios (which penalise the
/// baselines' unoptimised host compute) are shown alongside.
fn speedup_rows(name: &str, gs: &EngineTimes, other: &EngineTimes) -> Vec<Vec<String>> {
    let row = |alg: &str, g: &Measured, o: &Measured| {
        vec![
            name.to_string(),
            alg.to_string(),
            fmt_secs(g.io),
            fmt_secs(o.io),
            fmt_x(o.io / g.io),
            format!("{}MB", g.bytes >> 20),
            format!("{}MB", o.bytes >> 20),
            fmt_x(o.runtime() / g.runtime()),
        ]
    };
    vec![
        row("BFS", &gs.bfs, &other.bfs),
        row("PageRank", &gs.pr, &other.pr),
        row("CC/WCC", &gs.wcc, &other.wcc),
    ]
}

/// Figure 9: speedup of G-Store over FlashGraph.
pub fn fig9(scale: &Scale) {
    let mut rows = Vec::new();
    let workloads: Vec<(&str, EdgeList)> = vec![
        ("Twitter-d", scale.twitter()),
        ("Twitter-u", scale.twitter_undirected()),
        ("Friendster-d", scale.friendster()),
        (
            // Leaked once per run; fine for a harness.
            Box::leak(format!("Kron-{}-{}", scale.kron_scale, scale.edge_factor).into_boxed_str()),
            scale.kron(),
        ),
    ];
    for (name, el) in &workloads {
        let gs = run_gstore(scale, el);
        let fg = run_flashgraph(el);
        rows.extend(speedup_rows(name, &gs, &fg));
    }
    print_table(
        "Figure 9: G-Store vs FlashGraph (modelled runtime on the same SSD array)",
        &[
            "graph",
            "algorithm",
            "GS io time",
            "FG io time",
            "speedup",
            "GS io",
            "FG io",
            "wall x",
        ],
        &rows,
    );
    note("paper: ~1.4x BFS (undirected), ~2x PageRank, >2x CC; BFS on directed graphs ~0.8x");
}

/// §VII.B: speedups over X-Stream (the paper quotes up to 17x BFS,
/// 21x PageRank, 32x CC on Kron-28-16; 9-17x on Twitter).
pub fn xstream_comparison(scale: &Scale) {
    let mut rows = Vec::new();
    let workloads: Vec<(&str, EdgeList)> = vec![
        (
            Box::leak(format!("Kron-{}-{}", scale.kron_scale, scale.edge_factor).into_boxed_str()),
            scale.kron(),
        ),
        ("Twitter-d", scale.twitter()),
    ];
    for (name, el) in &workloads {
        let gs = run_gstore(scale, el);
        let xs = run_xstream(el);
        rows.extend(speedup_rows(name, &gs, &xs));
    }
    print_table(
        "X-Stream comparison (modelled runtime on the same SSD array)",
        &[
            "graph",
            "algorithm",
            "GS io time",
            "XS io time",
            "speedup",
            "GS io",
            "XS io",
            "wall x",
        ],
        &rows,
    );
    note("paper: 17x BFS / 21x PageRank / 32x CC on Kron-28-16; 12x/9x/17x on Twitter");
}

/// Table III: the largest graphs this run affords (the paper's
/// trillion-edge runs, scaled; shape: WCC < BFS < PageRank runtimes).
pub fn table3(scale: &Scale) {
    // One scale step up from the default workload.
    let big = Scale {
        kron_scale: scale.kron_scale + 2,
        ..*scale
    };
    let el = big.kron();
    let store = big.store(&el);
    let deg = degrees(&el);
    let tiling = *store.layout().tiling();
    let cfg = gstore_config(store.data_bytes());

    let mut rows = Vec::new();
    let mut bfs = Bfs::new(tiling, 0);
    let (stats, m) = run_gstore_on_sim(&store, cfg.clone(), 8, &mut bfs, 10_000).unwrap();
    let edges = stats.edges_processed;
    rows.push(vec![
        "BFS".into(),
        fmt_secs(m.runtime()),
        format!("{} iters", stats.iterations),
        format!("{:.0} MTEPS", edges as f64 / 1e6 / m.runtime()),
    ]);
    let mut pr = PageRank::new(tiling, deg, 0.85).with_iterations(PR_ITERS);
    let (stats, m) = run_gstore_on_sim(&store, cfg.clone(), 8, &mut pr, PR_ITERS).unwrap();
    rows.push(vec![
        "PageRank".into(),
        fmt_secs(m.runtime()),
        format!("{} iters", stats.iterations),
        format!("{:.2}s/iter", m.runtime() / stats.iterations as f64),
    ]);
    let mut wcc = Wcc::new(tiling);
    let (stats, m) = run_gstore_on_sim(&store, cfg, 8, &mut wcc, 10_000).unwrap();
    rows.push(vec![
        "WCC".into(),
        fmt_secs(m.runtime()),
        format!("{} iters", stats.iterations),
        String::new(),
    ]);
    print_table(
        &format!(
            "Table III: Kron-{}-{} on 8 simulated SSDs (|V|={}, |E|={})",
            big.kron_scale,
            big.edge_factor,
            el.vertex_count(),
            el.edge_count()
        ),
        &["algorithm", "runtime", "iterations", "metric"],
        &rows,
    );
    note("paper (Kron-31-256): BFS 2549s @432 MTEPS, PageRank 4215s, WCC 1925s — WCC fastest, PR slowest");
}
