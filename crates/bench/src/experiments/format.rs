//! Storage-format experiments: tile/group occupancy (Figures 5 and 7),
//! conversion time (Table I), and storage sizes (Table II).

use crate::table::{note, print_table};
use crate::workloads::Scale;
use gstore_graph::{Csr, CsrDirection, EdgeList, PAPER_GRAPHS};
use gstore_tile::sizing::{human_bytes, start_edge_bytes, table2_row};
use gstore_tile::stats::{group_stats, tile_stats, OccupancyStats};
use gstore_tile::{ConversionOptions, TileStore};
use std::time::Instant;

fn occupancy_rows(stats: &OccupancyStats, unit: &str) -> Vec<Vec<String>> {
    vec![
        vec![format!("total {unit}s"), stats.total_units.to_string()],
        vec!["total edges".into(), stats.total_edges.to_string()],
        vec![
            "empty".into(),
            format!("{:.1}%", stats.empty_fraction * 100.0),
        ],
        vec![
            "< 1,000 edges".into(),
            format!("{:.1}%", stats.fraction_below(1000) * 100.0),
        ],
        vec![
            "> 100,000 edges".into(),
            format!("{:.2}%", stats.fraction_above(100_000) * 100.0),
        ],
        vec!["largest".into(), stats.max_count.to_string()],
        vec!["smallest".into(), stats.min_count.to_string()],
    ]
}

/// Figure 5: per-tile edge-count distribution of the Twitter-like graph.
pub fn fig5(scale: &Scale) {
    let el = scale.twitter();
    let store = scale.store(&el);
    let stats = tile_stats(&store);
    print_table(
        &format!(
            "Figure 5: tile occupancy, Twitter-like (|V|={}, |E|={})",
            el.vertex_count(),
            el.edge_count()
        ),
        &["metric", "value"],
        &occupancy_rows(&stats, "tile"),
    );
    let series: Vec<String> = stats
        .series(12)
        .into_iter()
        .map(|(i, c)| format!("#{i}:{c}"))
        .collect();
    println!("   sorted-occupancy series: {}", series.join(" "));
    note("paper (full Twitter): 40% empty, 82% under 1k, 0.2% over 100k, max 36M edges");
}

/// Figure 7: per-physical-group edge counts for the Twitter-like graph.
pub fn fig7(scale: &Scale) {
    let el = scale.twitter();
    let store = scale.store(&el);
    let stats = group_stats(&store);
    print_table(
        &format!(
            "Figure 7: physical-group occupancy (q={})",
            scale.group_side
        ),
        &["metric", "value"],
        &occupancy_rows(&stats, "group"),
    );
    let series: Vec<String> = stats
        .series(8)
        .into_iter()
        .map(|(i, c)| format!("#{i}:{c}"))
        .collect();
    println!("   sorted-occupancy series: {}", series.join(" "));
    note("paper: group sizes span 364k .. >1B edges (mostly tens-hundreds of MB)");
}

/// Table I: conversion time, CSR vs the G-Store tile format.
pub fn table1(scale: &Scale) {
    let workloads: Vec<(String, EdgeList)> = vec![
        (
            format!("Kron-{}-{}", scale.kron_scale, scale.edge_factor),
            scale.kron(),
        ),
        ("Twitter-like".into(), scale.twitter()),
        ("Friendster-like".into(), scale.friendster()),
        ("Subdomain-like".into(), scale.subdomain()),
    ];
    let mut rows = Vec::new();
    for (name, el) in &workloads {
        let t0 = Instant::now();
        let csr = Csr::from_edge_list(el, CsrDirection::Out);
        let t_csr = t0.elapsed().as_secs_f64();
        std::hint::black_box(&csr);
        let t1 = Instant::now();
        let store = TileStore::build(
            el,
            &ConversionOptions::new(scale.tile_bits).with_group_side(scale.group_side),
        )
        .unwrap();
        let t_gs = t1.elapsed().as_secs_f64();
        std::hint::black_box(&store);
        rows.push(vec![
            name.to_string(),
            format!("{:.3}s", t_csr),
            format!("{:.3}s", t_gs),
            format!("{:.2}x", t_csr / t_gs),
        ]);
    }
    print_table(
        "Table I: conversion time (seconds)",
        &["graph", "CSR", "G-Store", "CSR/G-Store"],
        &rows,
    );
    note(
        "paper: G-Store converts faster except on Twitter (skewed tiles): 89 vs 57s on Kron-28-16",
    );
}

/// Table II: storage sizes and saving factors for all nine paper graphs
/// (exact arithmetic at full scale) plus a measured row at this run's
/// scale.
pub fn table2(scale: &Scale) {
    let mut rows = Vec::new();
    for g in PAPER_GRAPHS {
        let r = table2_row(g);
        rows.push(vec![
            r.name.to_string(),
            format!("{:?}", r.kind),
            r.vertex_count.to_string(),
            r.edge_tuples.to_string(),
            human_bytes(r.edge_list_bytes),
            human_bytes(r.csr_bytes),
            human_bytes(r.gstore_bytes),
            format!("{:.0}x", r.saving_vs_edge_list),
            format!("{:.0}x", r.saving_vs_csr),
        ]);
    }
    print_table(
        "Table II: storage sizes (analytic, full paper scale)",
        &[
            "graph",
            "type",
            "|V|",
            "tuples",
            "edge list",
            "CSR",
            "G-Store",
            "vs EL",
            "vs CSR",
        ],
        &rows,
    );
    let k33 = gstore_graph::paper_graph("Kron-33-16").unwrap();
    note(&format!(
        "Kron-33-16 start-edge file: {} (paper: ~65GB)",
        human_bytes(start_edge_bytes(k33))
    ));

    // Measured at this run's scale: bytes on disk for the three formats.
    let el = scale.kron();
    let store = scale.store(&el);
    let el_bytes = el.edge_count() * 2 * 8; // both orientations, 8B tuples
    let csr_bytes = el.edge_count() * 2 * 4; // doubled adjacency, u32
    let rows = vec![vec![
        format!("Kron-{}-{} (measured)", scale.kron_scale, scale.edge_factor),
        human_bytes(el_bytes),
        human_bytes(csr_bytes),
        human_bytes(store.data_bytes()),
        format!("{:.1}x", el_bytes as f64 / store.data_bytes() as f64),
        format!("{:.1}x", csr_bytes as f64 / store.data_bytes() as f64),
    ]];
    print_table(
        "Table II (measured at run scale)",
        &["graph", "edge list", "CSR", "G-Store", "vs EL", "vs CSR"],
        &rows,
    );
}
