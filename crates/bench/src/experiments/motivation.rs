//! Figure 2: the three motivating observations (§III).

use crate::model::{fmt_secs, fmt_x, run_gstore_on_sim, sim_for_blob};
use crate::table::{note, print_table};
use crate::workloads::{degrees, Scale};
use gstore_baselines::xstream::{self, XStreamConfig, XStreamEngine};
use gstore_core::{inmem, GStoreEngine, PageRank};
use gstore_tile::{ConversionOptions, TileStore};
use std::time::Instant;

const PR_ITERS: u32 = 3;

/// Figure 2(a): PageRank performance doubles when the X-Stream edge tuple
/// shrinks from 16 to 8 bytes.
pub fn fig2a(scale: &Scale) {
    let el = scale.kron();
    let mut rows = Vec::new();
    let mut runtimes = Vec::new();
    for tuple_bytes in [16usize, 8] {
        let (meta, blob) = xstream::build(&el, XStreamConfig::new(tuple_bytes).unwrap()).unwrap();
        let sim = sim_for_blob(blob, 1);
        let eng = XStreamEngine::new(meta, sim.clone()).unwrap();
        let start = Instant::now();
        let (_, stats) = eng.pagerank(PR_ITERS, 0.85).unwrap();
        let wall = start.elapsed().as_secs_f64();
        sim.charge_stream(
            stats.update_bytes_written + stats.update_bytes_read,
            1 << 20,
        );
        let io = sim.stats().elapsed;
        let runtime = wall.max(io);
        runtimes.push(runtime);
        rows.push(vec![
            format!("{tuple_bytes}-Byte"),
            format!("{}", stats.total_io_bytes() >> 20),
            fmt_secs(io),
            fmt_secs(wall),
            fmt_secs(runtime),
        ]);
    }
    let speedup = runtimes[0] / runtimes[1];
    rows[0].push(fmt_x(1.0));
    rows[1].push(fmt_x(speedup));
    print_table(
        &format!(
            "Figure 2(a): X-Stream PageRank vs edge-tuple size (Kron-{}-{})",
            scale.kron_scale, scale.edge_factor
        ),
        &["tuple", "io MB", "io time", "compute", "runtime", "speedup"],
        &rows,
    );
    note("paper: halving the tuple size roughly doubles PageRank performance (~2x)");
}

/// Figure 2(b): in-memory PageRank speedup vs number of 2D partitions
/// (metadata-access localisation).
pub fn fig2b(scale: &Scale) {
    let el = scale.kron();
    let deg = degrees(&el);
    // SNB locals cap tiles at 2^16 vertices, so the coarsest grid of a
    // scale-N graph has 2^(N-16) partitions (4 for the default scale 18).
    let max_bits = scale.kron_scale.min(gstore_tile::MAX_TILE_BITS);
    let min_bits = scale.kron_scale.saturating_sub(12).max(4); // up to 4096
    let mut rows = Vec::new();
    let mut baseline = None;
    for bits in (min_bits..=max_bits).rev() {
        let store = TileStore::build(&el, &ConversionOptions::new(bits)).unwrap();
        let partitions = store.layout().tiling().partitions();
        let start = Instant::now();
        let mut pr =
            PageRank::new(*store.layout().tiling(), deg.clone(), 0.85).with_iterations(PR_ITERS);
        inmem::run_in_memory(&store, &mut pr, PR_ITERS);
        let t = start.elapsed().as_secs_f64();
        let base = *baseline.get_or_insert(t);
        rows.push(vec![partitions.to_string(), fmt_secs(t), fmt_x(base / t)]);
    }
    print_table(
        "Figure 2(b): in-memory PageRank vs partition count",
        &["partitions", "time", "speedup"],
        &rows,
    );
    note("paper: performance peaks around 128-256 partitions (working set fits cache)");
}

/// Figure 2(c): streaming-memory size has almost no effect on an
/// I/O-bound run (motivating spending memory on caching instead).
pub fn fig2c(scale: &Scale) {
    let el = scale.kron();
    let deg = degrees(&el);
    let store = scale.store(&el);
    let data = store.data_bytes().max(1 << 20);
    let mut rows = Vec::new();
    let mut baseline = None;
    for frac in [64u64, 32, 16, 8, 4, 2] {
        let seg = (data / frac).max(4096);
        // Base policy: all memory is streaming segments, no cache pool.
        let cfg = GStoreEngine::builder().base_policy(seg * 2);
        let mut pr =
            PageRank::new(*store.layout().tiling(), deg.clone(), 0.85).with_iterations(PR_ITERS);
        let (_, m) = run_gstore_on_sim(&store, cfg, 1, &mut pr, PR_ITERS).unwrap();
        let runtime = m.runtime();
        let base = *baseline.get_or_insert(runtime);
        rows.push(vec![
            format!("{}KB", seg >> 10),
            fmt_secs(m.io),
            fmt_secs(m.wall),
            fmt_x(base / runtime),
        ]);
    }
    print_table(
        "Figure 2(c): PageRank vs streaming-memory (segment) size, no caching",
        &["segment", "io time", "compute", "speedup vs smallest"],
        &rows,
    );
    note("paper: extra streaming memory yields <1.2x — the disk stays the bottleneck");
}
