//! Ablations of G-Store's own design choices: space saving (Fig. 10),
//! physical grouping (Figs. 11–12), SCR policy (Fig. 13), cache size
//! (Fig. 14), and SSD scaling (Fig. 15).

use crate::model::{
    fmt_phase_split, fmt_secs, fmt_x, fmt_zero_copy, run_gstore_instrumented, run_gstore_on_sim,
};
use crate::table::{note, print_table};
use crate::workloads::{degrees, Scale};
use gstore_cachesim::CacheHierarchy;
use gstore_core::{inmem, Bfs, EngineBuilder, GStoreEngine, PageRank, Wcc};
use gstore_graph::EdgeList;
use gstore_scr::ScrConfig;
use gstore_tile::{ConversionOptions, EdgeEncoding, TileStore};
use std::time::Instant;

const PR_ITERS: u32 = 5;
const SEGMENT: u64 = 256 << 10;

fn scr_config(total: u64) -> EngineBuilder {
    GStoreEngine::builder().scr(ScrConfig::new(SEGMENT, total.max(2 * SEGMENT + 1)).unwrap())
}

/// Figure 10: speedup from symmetry and SNB, at a fixed memory budget.
pub fn fig10(scale: &Scale) {
    let el = scale.kron();
    let deg = degrees(&el);
    let variants: Vec<(&str, TileStore)> = vec![
        ("Base", scale.store_with(&el, EdgeEncoding::Tuple8, false)),
        (
            "Symmetry",
            scale.store_with(&el, EdgeEncoding::Tuple8, true),
        ),
        (
            "Symmetry+SNB",
            scale.store_with(&el, EdgeEncoding::Snb, true),
        ),
    ];
    // Fixed absolute budget for all three arms, proportioned like the
    // paper's (8 GB against 64/32/16 GB of data): half the smallest
    // variant, i.e. 1/8 of the base variant.
    let budget = variants[2].1.data_bytes() / 2 + 2 * SEGMENT + 4096;
    let mut rows = Vec::new();
    let mut base: Option<(f64, f64)> = None;
    for (name, store) in &variants {
        let tiling = *store.layout().tiling();
        let mut bfs = Bfs::new(tiling, 0);
        let (_, m_bfs) = run_gstore_on_sim(store, scr_config(budget), 2, &mut bfs, 10_000).unwrap();
        let mut pr = PageRank::new(tiling, deg.clone(), 0.85).with_iterations(PR_ITERS);
        let (_, m_pr) = run_gstore_on_sim(store, scr_config(budget), 2, &mut pr, PR_ITERS).unwrap();
        let (b0, p0) = *base.get_or_insert((m_bfs.runtime(), m_pr.runtime()));
        rows.push(vec![
            name.to_string(),
            format!("{}MB", store.data_bytes() >> 20),
            fmt_secs(m_bfs.runtime()),
            fmt_x(b0 / m_bfs.runtime()),
            fmt_secs(m_pr.runtime()),
            fmt_x(p0 / m_pr.runtime()),
        ]);
    }
    print_table(
        "Figure 10: speedup from space saving (fixed memory budget)",
        &[
            "format",
            "data",
            "BFS",
            "BFS speedup",
            "PageRank",
            "PR speedup",
        ],
        &rows,
    );
    note("paper: symmetry ~2x; symmetry+SNB 4.9x BFS / 4.8x PageRank (super-linear: more data cached)");
}

/// Figure 11: in-memory PageRank vs physical-group composition.
///
/// This experiment measures the *host machine's* cache behaviour, so the
/// graph is grown two scale steps beyond the default to push the per-group
/// metadata working set across the host LLC.
pub fn fig11(scale: &Scale) {
    let big = Scale {
        kron_scale: scale.kron_scale + 2,
        ..*scale
    };
    let el = big.kron();
    let deg = degrees(&el);
    let iters = 2u32;
    let p = {
        let t = gstore_tile::Tiling::new(
            el.vertex_count(),
            big.tile_bits,
            gstore_graph::GraphKind::Undirected,
        )
        .unwrap();
        t.partitions()
    };
    let mut q = 2u32;
    let mut rows = Vec::new();
    let mut baseline = None;
    while q <= p {
        let store = TileStore::build(
            &el,
            &ConversionOptions::new(big.tile_bits).with_group_side(q),
        )
        .unwrap();
        // Best-of-2 to damp scheduler noise.
        let mut best = f64::INFINITY;
        for _ in 0..2 {
            let mut pr =
                PageRank::new(*store.layout().tiling(), deg.clone(), 0.85).with_iterations(iters);
            let t0 = Instant::now();
            inmem::run_in_memory_grouped(&store, &mut pr, iters);
            best = best.min(t0.elapsed().as_secs_f64());
        }
        let b = *baseline.get_or_insert(best);
        rows.push(vec![format!("{q}x{q}"), fmt_secs(best), fmt_x(b / best)]);
        q *= 2;
    }
    print_table(
        "Figure 11: in-memory PageRank vs group composition",
        &["group (tiles)", "time", "speedup vs smallest"],
        &rows,
    );
    note("paper: 256x256 grouping is ~57% faster than 32x32, the LLC sweet spot");
}

/// Figure 12: modelled LLC operations and misses vs group composition.
pub fn fig12(scale: &Scale) {
    let el = scale.kron();
    // Small tiles + a scaled two-level hierarchy, sized so the group sweep
    // crosses both the L2 and LLC capacity boundaries the way the paper
    // machine's does (256 KB L2 / 16 MB LLC against 2^16-vertex tiles).
    let tile_bits = 8u32;
    let span = 1u64 << tile_bits;
    let n = el.vertex_count();
    let l2 = gstore_cachesim::CacheConfig {
        size_bytes: 32 << 10,
        line_bytes: 64,
        ways: 8,
    };
    let llc = gstore_cachesim::CacheConfig {
        size_bytes: 256 << 10,
        line_bytes: 64,
        ways: 16,
    };
    let mut rows = Vec::new();
    let mut q = 2u32;
    let p = gstore_tile::Tiling::new(n, tile_bits, gstore_graph::GraphKind::Undirected)
        .unwrap()
        .partitions();
    while q <= p {
        let store =
            TileStore::build(&el, &ConversionOptions::new(tile_bits).with_group_side(q)).unwrap();
        let mut h = CacheHierarchy::new(l2, llc).unwrap();
        // PageRank metadata access stream: share[src] read, next[dst]
        // update, per edge, tiles in storage order. Region bases are
        // disjoint so the two arrays do not alias in the model.
        let share_base = 0u64;
        let next_base = n * 8;
        for idx in 0..store.tile_count() {
            let coord = store.layout().coord_at(idx);
            let sb = coord.row as u64 * span * 8;
            let db = coord.col as u64 * span * 8;
            for e in store.decode_tile(idx).unwrap() {
                let ls = (e.src % span) * 8;
                let ld = (e.dst % span) * 8;
                h.access(share_base + sb + ls);
                h.access(next_base + db + ld);
                // Symmetric stores push both directions.
                if store.layout().tiling().symmetric() {
                    h.access(share_base + db + ld);
                    h.access(next_base + sb + ls);
                }
            }
        }
        let s = h.stats();
        rows.push(vec![
            format!("{q}x{q}"),
            s.llc_operations().to_string(),
            s.llc_misses().to_string(),
        ]);
        q *= 2;
    }
    print_table(
        &format!(
            "Figure 12: modelled LLC behaviour (LLC = {}KB)",
            llc.size_bytes >> 10
        ),
        &["group (tiles)", "LLC operations", "LLC misses"],
        &rows,
    );
    note("paper: 256x256 minimises both series (21% fewer ops, 35% fewer misses than worst)");
}

/// Figure 13: SCR (cache + rewind) vs the base two-segment policy.
pub fn fig13(scale: &Scale) {
    let el = scale.kron();
    let store = scale.store(&el);
    let deg = degrees(&el);
    let tiling = *store.layout().tiling();
    let total = store.data_bytes() / 2 + 2 * SEGMENT;
    let scr = scr_config(total);
    let base = GStoreEngine::builder().base_policy(total);
    let mut rows = Vec::new();
    let mut run = |name: &str, alg_new: &dyn Fn() -> Box<dyn gstore_core::Algorithm>, iters| {
        let mut a1 = alg_new();
        let (s1, m1) = run_gstore_on_sim(&store, base.clone(), 1, a1.as_mut(), iters).unwrap();
        let mut a2 = alg_new();
        // The SCR arm carries the flight recorder: the phase split shows
        // where the policy's time actually goes (measured, not modelled).
        let (s2, m2, em2) =
            run_gstore_instrumented(&store, scr.clone(), 1, a2.as_mut(), iters).unwrap();
        rows.push(vec![
            name.to_string(),
            fmt_secs(m1.runtime()),
            fmt_secs(m2.runtime()),
            fmt_x(m1.runtime() / m2.runtime()),
            format!("{}MB", s1.bytes_read >> 20),
            format!("{}MB", s2.bytes_read >> 20),
            format!("{:.0}%", 100.0 * s2.cache_hit_fraction()),
            fmt_phase_split(&em2),
            fmt_zero_copy(&em2),
        ]);
    };
    run("BFS", &|| Box::new(Bfs::new(tiling, 0)), 10_000);
    let d = deg.clone();
    run(
        "PageRank",
        &move || Box::new(PageRank::new(tiling, d.clone(), 0.85).with_iterations(PR_ITERS)),
        PR_ITERS,
    );
    run("WCC", &|| Box::new(Wcc::new(tiling)), 10_000);
    print_table(
        "Figure 13: SCR (cache+rewind) vs base two-segment policy (memory = data/2)",
        &[
            "algorithm",
            "base",
            "SCR",
            "speedup",
            "base io",
            "SCR io",
            "cache hits",
            "SCR sel/rew/sli/ins",
            "SCR cp/pool-hit",
        ],
        &rows,
    );
    note("paper: >60% faster BFS, >35% faster PageRank and WCC");
}

/// Figure 14: effect of the caching-memory size.
pub fn fig14(scale: &Scale) {
    let workloads: Vec<(&str, EdgeList)> = vec![
        (
            Box::leak(format!("Kron-{}-{}", scale.kron_scale, scale.edge_factor).into_boxed_str()),
            scale.kron(),
        ),
        ("Twitter-like", scale.twitter()),
    ];
    let mut rows = Vec::new();
    for (name, el) in &workloads {
        let store = scale.store(el);
        let deg = degrees(el);
        let tiling = *store.layout().tiling();
        let data = store.data_bytes();
        let mut base: Option<[f64; 3]> = None;
        for frac in [8u64, 4, 2, 1] {
            let total = data / frac + 2 * SEGMENT;
            let cfg = scr_config(total);
            let mut bfs = Bfs::new(tiling, 0);
            let (_, mb) = run_gstore_on_sim(&store, cfg.clone(), 2, &mut bfs, 10_000).unwrap();
            let mut pr = PageRank::new(tiling, deg.clone(), 0.85).with_iterations(PR_ITERS);
            // Instrument PageRank: the measured rewind share shows how much
            // work each cache budget actually moves out of the I/O path.
            let (_, mp, ep) =
                run_gstore_instrumented(&store, cfg.clone(), 2, &mut pr, PR_ITERS).unwrap();
            let mut wcc = Wcc::new(tiling);
            let (_, mw) = run_gstore_on_sim(&store, cfg, 2, &mut wcc, 10_000).unwrap();
            let times = [mb.runtime(), mp.runtime(), mw.runtime()];
            let b = *base.get_or_insert(times);
            rows.push(vec![
                name.to_string(),
                format!("data/{frac}"),
                fmt_x(b[0] / times[0]),
                fmt_x(b[1] / times[1]),
                fmt_x(b[2] / times[2]),
                fmt_phase_split(&ep),
                fmt_zero_copy(&ep),
            ]);
        }
    }
    print_table(
        "Figure 14: speedup vs cache memory (relative to the smallest budget)",
        &[
            "graph",
            "cache size",
            "BFS",
            "PageRank",
            "WCC",
            "PR sel/rew/sli/ins",
            "PR cp/pool-hit",
        ],
        &rows,
    );
    note("paper: up to 30% (Kron-28-16 @8GB) and 37-46% (Twitter @4GB) improvement");
}

/// Figure 15: scalability with the number of SSDs.
pub fn fig15(scale: &Scale) {
    let el = scale.kron();
    let store = scale.store(&el);
    let deg = degrees(&el);
    let tiling = *store.layout().tiling();
    let total = store.data_bytes() / 4 + 2 * SEGMENT;
    let mut rows = Vec::new();
    let mut base: Option<[f64; 3]> = None;
    for devices in [1usize, 2, 4, 8] {
        let mut bfs = Bfs::new(tiling, 0);
        let (_, mb) =
            run_gstore_on_sim(&store, scr_config(total), devices, &mut bfs, 10_000).unwrap();
        let mut pr = PageRank::new(tiling, deg.clone(), 0.85).with_iterations(PR_ITERS);
        let (_, mp) =
            run_gstore_on_sim(&store, scr_config(total), devices, &mut pr, PR_ITERS).unwrap();
        let mut wcc = Wcc::new(tiling);
        let (_, mw) =
            run_gstore_on_sim(&store, scr_config(total), devices, &mut wcc, 10_000).unwrap();
        let times = [mb.runtime(), mp.runtime(), mw.runtime()];
        let b = *base.get_or_insert(times);
        rows.push(vec![
            format!("{devices} SSD"),
            fmt_x(b[0] / times[0]),
            fmt_x(b[1] / times[1]),
            fmt_x(b[2] / times[2]),
            fmt_secs(mp.io),
            fmt_secs(mp.wall),
        ]);
    }
    print_table(
        "Figure 15: scalability on the simulated SSD array (speedup vs 1 SSD)",
        &[
            "devices",
            "BFS",
            "PageRank",
            "WCC",
            "PR io time",
            "PR compute",
        ],
        &rows,
    );
    note("paper: ~4x at 4 SSDs, ~6x at 8 (PageRank saturates CPU before 8 SSDs)");
}
