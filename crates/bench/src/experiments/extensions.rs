//! Extensions beyond the paper's evaluation — its §VIII/§IX future-work
//! items (tile compression, tiered storage) and the optimised algorithm
//! variants it cites (asynchronous BFS, delta PageRank).

use crate::model::{fmt_secs, fmt_x, run_gstore_on_sim, scaled_array_config};
use crate::table::{note, print_table};
use crate::workloads::{degrees, Scale};
use gstore_core::{inmem, AsyncBfs, Bfs, GStoreEngine, PageRank, PageRankDelta};
use gstore_graph::EdgeList;
use gstore_io::{hdd_array, MemBackend, SsdArraySim, StorageBackend, TieredBackend};
use gstore_scr::ScrConfig;
use gstore_tile::{write_compressed, TileIndex};
use std::sync::Arc;
use std::time::Instant;

/// Extension: per-graph tile compression ratios (the paper's §VIII
/// future work, implemented).
pub fn ext_compress(scale: &Scale) {
    let dir = tempfile::tempdir().expect("tempdir");
    let workloads: Vec<(&str, EdgeList)> = vec![
        (
            Box::leak(format!("Kron-{}-{}", scale.kron_scale, scale.edge_factor).into_boxed_str()),
            scale.kron(),
        ),
        ("Twitter-like", scale.twitter()),
        ("Friendster-like", scale.friendster()),
        ("Subdomain-like", scale.subdomain()),
    ];
    let mut rows = Vec::new();
    for (name, el) in &workloads {
        let store = scale.store(el);
        let t0 = Instant::now();
        let (_, report) = write_compressed(&store, dir.path(), name).unwrap();
        let t = t0.elapsed().as_secs_f64();
        rows.push(vec![
            name.to_string(),
            format!("{}MB", report.raw_bytes >> 20),
            format!("{}MB", report.compressed_bytes >> 20),
            fmt_x(report.ratio()),
            fmt_secs(t),
        ]);
    }
    print_table(
        "Extension: per-tile delta compression on top of SNB",
        &[
            "graph",
            "SNB tiles",
            "compressed",
            "extra saving",
            "compress time",
        ],
        &rows,
    );
    note("paper §VIII: 'Compression can be applied to the data present in tiles ... future work'");
}

/// Extension: tiered SSD+HDD storage (§IX future work): PageRank runtime
/// as the SSD-resident fraction of the tile data shrinks.
pub fn ext_tiered(scale: &Scale) {
    let el = scale.kron();
    let store = scale.store(&el);
    let deg = degrees(&el);
    let tiling = *store.layout().tiling();
    let data = store.data_bytes();
    let seg = 256 << 10;
    let cfg = GStoreEngine::builder().scr(ScrConfig::new(seg, data / 4 + 2 * seg).unwrap());
    let iters = 3u32;
    let mut rows = Vec::new();
    let mut baseline = None;
    for ssd_pct in [100u64, 75, 50, 25, 0] {
        let boundary = data * ssd_pct / 100;
        let fast = Arc::new(SsdArraySim::new(
            Arc::new(MemBackend::new(store.data().to_vec())),
            scaled_array_config(4),
        ));
        let slow = Arc::new(SsdArraySim::new(
            Arc::new(MemBackend::new(store.data().to_vec())),
            hdd_array(2),
        ));
        let tiered: Arc<dyn StorageBackend> =
            Arc::new(TieredBackend::new(fast.clone(), slow.clone(), boundary).unwrap());
        let index = TileIndex::raw(
            store.layout().clone(),
            store.encoding(),
            store.start_edge().to_vec(),
        );
        let mut engine = cfg.clone().backend(index, tiered).build().unwrap();
        let mut pr = PageRank::new(tiling, deg.clone(), 0.85).with_iterations(iters);
        let t0 = Instant::now();
        engine.run(&mut pr, iters).unwrap();
        let wall = t0.elapsed().as_secs_f64();
        let io = fast.stats().elapsed + slow.stats().elapsed;
        let runtime = wall.max(io);
        let base = *baseline.get_or_insert(runtime);
        rows.push(vec![
            format!("{ssd_pct}%"),
            format!("{}MB", fast.stats().total_bytes >> 20),
            format!("{}MB", slow.stats().total_bytes >> 20),
            fmt_secs(runtime),
            fmt_x(runtime / base),
        ]);
    }
    print_table(
        "Extension: tiered SSD+HDD storage (PageRank, hot groups SSD-first)",
        &[
            "SSD share",
            "SSD bytes",
            "HDD bytes",
            "runtime",
            "slowdown vs all-SSD",
        ],
        &rows,
    );
    note("paper §IX: 'extend G-Store to support even larger graphs on a tiered storage'");
}

/// Extension: G-Store's proactive tile cache vs GridGraph's page-cache
/// reliance (§VIII: "While GridGraph depends upon Linux page-cache for
/// caching, G-Store exploits the properties of 2D tiles to cache data
/// that are most likely to be needed in the next iteration").
pub fn ext_gridgraph(scale: &Scale) {
    use gstore_baselines::gridgraph::{GridGraphConfig, GridGraphEngine};
    use gstore_core::Bfs as GsBfs;
    use gstore_io::SsdArraySim;

    let el = scale.kron();
    let store = scale.store(&el);
    let deg = degrees(&el);
    let tiling = *store.layout().tiling();
    let seg = 256u64 << 10;
    let budget = store.data_bytes() / 2;
    let cfg = GStoreEngine::builder().scr(ScrConfig::new(seg, budget + 2 * seg).unwrap());
    let iters = 5u32;

    let mut rows = Vec::new();
    let gg_run = |which: u8| {
        let mut gcfg = GridGraphConfig::new(tiling.partitions());
        gcfg.cache_bytes = budget + 2 * seg; // same total memory
        let (meta, blob) = gstore_baselines::gridgraph::build(&el, gcfg).unwrap();
        let sim = Arc::new(SsdArraySim::new(
            Arc::new(MemBackend::new(blob)),
            crate::model::scaled_array_config(2),
        ));
        let mut eng = GridGraphEngine::new(meta, sim.clone()).unwrap();
        let t0 = Instant::now();
        let stats = match which {
            0 => eng.bfs(0).unwrap().1,
            1 => eng.pagerank(iters, 0.85).unwrap().1,
            _ => eng.wcc().unwrap().1,
        };
        let wall = t0.elapsed().as_secs_f64();
        (
            stats,
            sim.stats().elapsed.max(wall),
            sim.stats().total_bytes,
        )
    };
    let gs_run = |which: u8| match which {
        0 => {
            let mut a = GsBfs::new(tiling, 0);
            run_gstore_on_sim(&store, cfg.clone(), 2, &mut a, 10_000).unwrap()
        }
        1 => {
            let mut a = PageRank::new(tiling, deg.clone(), 0.85).with_iterations(iters);
            run_gstore_on_sim(&store, cfg.clone(), 2, &mut a, iters).unwrap()
        }
        _ => {
            let mut a = gstore_core::Wcc::new(tiling);
            run_gstore_on_sim(&store, cfg.clone(), 2, &mut a, 10_000).unwrap()
        }
    };
    for (name, which) in [("BFS", 0u8), ("PageRank", 1), ("CC/WCC", 2)] {
        let (_, gm) = gs_run(which);
        let (_, gg_rt, gg_bytes) = gg_run(which);
        rows.push(vec![
            name.to_string(),
            fmt_secs(gm.runtime()),
            fmt_secs(gg_rt),
            fmt_x(gg_rt / gm.runtime()),
            format!("{}MB", gm.bytes >> 20),
            format!("{}MB", gg_bytes >> 20),
        ]);
    }
    print_table(
        "Extension: G-Store vs GridGraph-style engine (equal memory budget)",
        &[
            "algorithm",
            "G-Store",
            "GridGraph",
            "speedup",
            "GS io",
            "GG io",
        ],
        &rows,
    );
    note("paper §VIII: GridGraph's page cache vs G-Store's proactive tile cache + SNB (4 vs 8 B/edge)");
}

/// Extension: optimised algorithm variants the paper cites — asynchronous
/// BFS (fewer iterations) and delta PageRank (shrinking active set).
pub fn ext_algorithms(scale: &Scale) {
    let el = scale.kron();
    let store = scale.store(&el);
    let deg = degrees(&el);
    let tiling = *store.layout().tiling();
    let mut rows = Vec::new();

    // BFS vs AsyncBfs through the full engine on the simulated array.
    let seg = 256u64 << 10;
    let cfg =
        GStoreEngine::builder().scr(ScrConfig::new(seg, store.data_bytes() / 2 + 2 * seg).unwrap());
    let mut sync = Bfs::new(tiling, 0);
    let (ss, sm) = run_gstore_on_sim(&store, cfg.clone(), 2, &mut sync, 10_000).unwrap();
    let mut asynch = AsyncBfs::new(tiling, 0);
    let (as_, am) = run_gstore_on_sim(&store, cfg, 2, &mut asynch, 10_000).unwrap();
    assert_eq!(sync.depths(), asynch.depths(), "fixed points must agree");
    rows.push(vec![
        "BFS (level-sync)".into(),
        ss.iterations.to_string(),
        format!("{}MB", ss.bytes_read >> 20),
        fmt_secs(sm.runtime()),
    ]);
    rows.push(vec![
        "BFS (asynchronous)".into(),
        as_.iterations.to_string(),
        format!("{}MB", as_.bytes_read >> 20),
        fmt_secs(am.runtime()),
    ]);

    // PageRank vs PageRankDelta in memory: the delta variant converges
    // (all per-vertex deltas below threshold) and stops on its own, while
    // the full push runs a fixed 40 iterations — compare total work.
    let iters = 40u32;
    let t0 = Instant::now();
    let mut pr = PageRank::new(tiling, deg.clone(), 0.85).with_iterations(iters);
    let sp = inmem::run_in_memory(&store, &mut pr, iters);
    let t_full = t0.elapsed().as_secs_f64();
    let t1 = Instant::now();
    let mut prd = PageRankDelta::new(tiling, deg, 0.85, 1e-7);
    let sd = inmem::run_in_memory(&store, &mut prd, iters);
    let t_delta = t1.elapsed().as_secs_f64();
    rows.push(vec![
        "PageRank (full push)".into(),
        sp.iterations.to_string(),
        format!("{}M edges", sp.edges_processed / 1_000_000),
        fmt_secs(t_full),
    ]);
    rows.push(vec![
        "PageRank (delta)".into(),
        sd.iterations.to_string(),
        format!("{}M edges", sd.edges_processed / 1_000_000),
        fmt_secs(t_delta),
    ]);
    print_table(
        "Extension: optimised algorithm variants (paper citations [26], [38])",
        &["algorithm", "iterations", "work", "time"],
        &rows,
    );
    println!("   (the variants' fixed points differ only in dangling-mass handling)");
    note("async BFS trades revisits for fewer iterations; delta PR prunes converged vertices");
}
