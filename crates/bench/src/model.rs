//! Storage-time modelling for cross-engine comparisons.
//!
//! Runtime experiments execute every engine's real code path (compute,
//! caching, request patterns) while charging all storage traffic to the
//! same simulated SSD array ([`gstore_io::SsdArraySim`]). A run's modelled
//! runtime is `max(compute wall-clock, simulated I/O time)` — the
//! pipelined-overlap assumption the paper's engines are built around.
//! This keeps comparisons deterministic and independent of the host's
//! actual disks, while preserving exactly the traffic-volume and
//! access-pattern differences the paper attributes its speedups to.

use gstore_core::{Algorithm, EngineBuilder, GStoreEngine, RunStats};
use gstore_graph::Result;
use gstore_io::{ArrayConfig, MemBackend, SsdArraySim, StorageBackend};
use gstore_metrics::EngineMetrics;
use gstore_tile::{TileIndex, TileStore};
use std::sync::Arc;
use std::time::Instant;

/// One measured run.
#[derive(Debug, Clone, Copy, Default)]
pub struct Measured {
    /// Wall-clock seconds of the run (compute + host overheads).
    pub wall: f64,
    /// Simulated array time for the run's storage traffic, seconds.
    pub io: f64,
    /// Bytes of storage traffic.
    pub bytes: u64,
}

impl Measured {
    /// Modelled runtime under perfect I/O/compute overlap.
    pub fn runtime(&self) -> f64 {
        self.wall.max(self.io)
    }
}

/// Array configuration for the scaled experiments.
///
/// The paper's testbed pairs 64 GB+ graphs with 500 MB/s SATA SSDs and a
/// 56-thread Xeon — an I/O-bound regime. Our graphs are ~1000x smaller but
/// host compute is only ~10-100x slower, so full-speed simulated devices
/// would make every run compute-bound and hide the I/O-policy effects the
/// paper measures. Scaling the per-device bandwidth down restores the
/// paper's compute:I/O balance; all engines are charged on the same model,
/// so *relative* results (who wins, crossovers) are preserved.
pub fn scaled_array_config(devices: usize) -> ArrayConfig {
    let mut cfg = ArrayConfig::new(devices);
    cfg.profile = gstore_io::SsdProfile {
        bandwidth: 48.0 * 1024.0 * 1024.0, // ~1/10 of a SATA SSD
        latency: 100e-6,                   // realistic flash read latency
    };
    cfg
}

/// Builds a simulated array serving a tile store's data.
pub fn sim_for_store(store: &TileStore, devices: usize) -> Arc<SsdArraySim> {
    Arc::new(SsdArraySim::new(
        Arc::new(MemBackend::new(store.data().to_vec())),
        scaled_array_config(devices),
    ))
}

/// Builds a simulated array over an arbitrary blob.
pub fn sim_for_blob(blob: Vec<u8>, devices: usize) -> Arc<SsdArraySim> {
    Arc::new(SsdArraySim::new(
        Arc::new(MemBackend::new(blob)),
        scaled_array_config(devices),
    ))
}

/// Runs a G-Store algorithm over a store on a simulated `devices`-SSD
/// array; returns engine stats and the measured/modelled times.
pub fn run_gstore_on_sim(
    store: &TileStore,
    builder: EngineBuilder,
    devices: usize,
    alg: &mut dyn Algorithm,
    max_iters: u32,
) -> Result<(RunStats, Measured)> {
    let (stats, measured, _) = run_gstore_on_sim_inner(store, builder, devices, alg, max_iters)?;
    Ok((stats, measured))
}

/// Like [`run_gstore_on_sim`] but with the flight recorder enabled:
/// additionally returns the engine's measured phase timings, I/O counters
/// and cache behaviour.
pub fn run_gstore_instrumented(
    store: &TileStore,
    builder: EngineBuilder,
    devices: usize,
    alg: &mut dyn Algorithm,
    max_iters: u32,
) -> Result<(RunStats, Measured, EngineMetrics)> {
    let (stats, measured, metrics) =
        run_gstore_on_sim_inner(store, builder.metrics(true), devices, alg, max_iters)?;
    Ok((stats, measured, metrics.expect("metrics enabled")))
}

fn run_gstore_on_sim_inner(
    store: &TileStore,
    builder: EngineBuilder,
    devices: usize,
    alg: &mut dyn Algorithm,
    max_iters: u32,
) -> Result<(RunStats, Measured, Option<EngineMetrics>)> {
    let sim = sim_for_store(store, devices);
    let index = TileIndex::raw(
        store.layout().clone(),
        store.encoding(),
        store.start_edge().to_vec(),
    );
    let backend: Arc<dyn StorageBackend> = sim.clone();
    let mut engine = builder.backend(index, backend).build()?;
    let start = Instant::now();
    let stats = engine.run(alg, max_iters)?;
    let wall = start.elapsed().as_secs_f64();
    let s = sim.stats();
    Ok((
        stats,
        Measured {
            wall,
            io: s.elapsed,
            bytes: s.total_bytes,
        },
        engine.metrics(),
    ))
}

/// Runs an instrumented PageRank workload at `scale` (SCR policy, memory =
/// data/2, 2 simulated SSDs) and returns the flight-recorder JSON — the
/// payload behind `repro --metrics-json`.
pub fn metrics_json_for_scale(scale: &crate::workloads::Scale) -> Result<String> {
    let el = scale.kron();
    let store = scale.store(&el);
    let deg = crate::workloads::degrees(&el);
    let tiling = *store.layout().tiling();
    let seg = (store.data_bytes() / 8).max(4096);
    let total = store.data_bytes() / 2 + 2 * seg + 4096;
    let cfg = GStoreEngine::builder().scr(gstore_scr::ScrConfig::new(seg, total)?);
    let mut pr = gstore_core::PageRank::new(tiling, deg, 0.85).with_iterations(5);
    let (_, _, metrics) = run_gstore_instrumented(&store, cfg, 2, &mut pr, 5)?;
    Ok(metrics.to_json())
}

/// Formats an [`EngineMetrics`] phase split as `sel/rew/sli/ins` percents.
pub fn fmt_phase_split(m: &EngineMetrics) -> String {
    let (sel, rew, sli, ins) = m.phase_split();
    format!(
        "{:.0}/{:.0}/{:.0}/{:.0}%",
        sel * 100.0,
        rew * 100.0,
        sli * 100.0,
        ins * 100.0
    )
}

/// Formats the zero-copy counters as `copied%/pool-hit%`: the fraction of
/// streamed bytes that were memcpy'd (cache inserts — everything else was
/// processed in place) and the buffer-pool reuse rate.
pub fn fmt_zero_copy(m: &EngineMetrics) -> String {
    format!(
        "{:.0}%/{:.0}%",
        m.copy.copy_fraction() * 100.0,
        m.buffer_pool.hit_rate() * 100.0
    )
}

/// Formats seconds compactly.
pub fn fmt_secs(s: f64) -> String {
    if s >= 100.0 {
        format!("{s:.0}s")
    } else if s >= 1.0 {
        format!("{s:.2}s")
    } else {
        format!("{:.2}ms", s * 1e3)
    }
}

/// Formats a speedup factor.
pub fn fmt_x(x: f64) -> String {
    format!("{x:.2}x")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workloads::Scale;
    use gstore_core::Wcc;
    use gstore_scr::ScrConfig;

    #[test]
    fn sim_run_produces_io_time() {
        let s = Scale::quick();
        let el = s.kron();
        let store = s.store(&el);
        let seg = (store.data_bytes() / 4).max(4096);
        let cfg = GStoreEngine::builder().scr(ScrConfig::new(seg, seg * 3).unwrap());
        let mut wcc = Wcc::new(*store.layout().tiling());
        let (stats, m) = run_gstore_on_sim(&store, cfg, 2, &mut wcc, 100).unwrap();
        assert!(stats.iterations > 0);
        assert!(m.io > 0.0);
        assert!(m.bytes > 0);
        assert!(m.runtime() >= m.io);
    }

    #[test]
    fn formatting() {
        assert_eq!(fmt_secs(0.0012), "1.20ms");
        assert_eq!(fmt_secs(2.5), "2.50s");
        assert_eq!(fmt_secs(120.0), "120s");
        assert_eq!(fmt_x(2.0), "2.00x");
    }
}
