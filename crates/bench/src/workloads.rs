//! Workload builders shared by the repro harness and criterion benches.
//!
//! Every experiment runs on scaled-down versions of the paper's graphs;
//! [`Scale`] centralises the scaling knobs so `repro --scale`/`--divisor`
//! affect all experiments uniformly.

use gstore_graph::gen::{generate_powerlaw, generate_rmat, PowerLawParams, RmatParams};
use gstore_graph::{CompactDegrees, EdgeList, GraphKind};
use gstore_tile::{ConversionOptions, EdgeEncoding, TileStore};

/// Global scaling knobs.
#[derive(Debug, Clone, Copy)]
pub struct Scale {
    /// Kronecker scale used for "Kron-28-16"-class workloads
    /// (paper: 28; default here: 18 → 262k vertices, 4.2M edges).
    pub kron_scale: u32,
    /// Edge factor for Kronecker workloads.
    pub edge_factor: u64,
    /// Divisor applied to the real-graph presets
    /// (paper: 1; default: 512 → Twitter-like with ~102k vertices).
    pub divisor: u64,
    /// Tile bits for scaled graphs. The paper uses 16; scaled graphs use
    /// smaller tiles so the grid keeps a paper-like number of partitions.
    pub tile_bits: u32,
    /// Physical-group side (q).
    pub group_side: u32,
}

impl Default for Scale {
    fn default() -> Self {
        // kron_scale 18 with tile_bits 11 gives p = 128 partitions —
        // the same grid magnitude the paper's graphs have at 2^16 tiles.
        Scale {
            kron_scale: 18,
            edge_factor: 16,
            divisor: 512,
            tile_bits: 11,
            group_side: 16,
        }
    }
}

impl Scale {
    /// A faster configuration for smoke runs (`repro --quick`).
    pub fn quick() -> Self {
        Scale {
            kron_scale: 14,
            edge_factor: 8,
            divisor: 4096,
            tile_bits: 9,
            group_side: 8,
        }
    }

    /// The scaled `Kron-<scale>-<ef>` undirected graph.
    pub fn kron(&self) -> EdgeList {
        generate_rmat(&RmatParams::kron(self.kron_scale, self.edge_factor)).unwrap()
    }

    /// A directed variant of the Kron workload.
    pub fn kron_directed(&self) -> EdgeList {
        generate_rmat(
            &RmatParams::kron(self.kron_scale, self.edge_factor).with_kind(GraphKind::Directed),
        )
        .unwrap()
    }

    /// Twitter-shaped directed graph at `divisor` scale.
    pub fn twitter(&self) -> EdgeList {
        generate_powerlaw(&PowerLawParams::twitter_like(self.divisor)).unwrap()
    }

    /// Twitter-shaped graph treated as undirected (the paper evaluates
    /// both orientations, the "-u"/"-d" suffixes of Figure 9).
    pub fn twitter_undirected(&self) -> EdgeList {
        generate_powerlaw(
            &PowerLawParams::twitter_like(self.divisor).with_kind(GraphKind::Undirected),
        )
        .unwrap()
    }

    /// Friendster-shaped directed graph.
    pub fn friendster(&self) -> EdgeList {
        generate_powerlaw(&PowerLawParams::friendster_like(self.divisor)).unwrap()
    }

    /// Subdomain-shaped directed graph.
    pub fn subdomain(&self) -> EdgeList {
        generate_powerlaw(&PowerLawParams::subdomain_like(self.divisor)).unwrap()
    }

    /// This scale's standard conversion options.
    pub fn conversion(&self) -> ConversionOptions {
        ConversionOptions::new(self.tile_bits).with_group_side(self.group_side)
    }

    /// Standard SNB store for an edge list under this scale's geometry.
    pub fn store(&self, el: &EdgeList) -> TileStore {
        TileStore::build(el, &self.conversion()).unwrap()
    }

    /// Store with explicit conversion options (ablations).
    pub fn store_with(
        &self,
        el: &EdgeList,
        encoding: EdgeEncoding,
        exploit_symmetry: bool,
    ) -> TileStore {
        let mut opts = ConversionOptions::new(self.tile_bits)
            .with_group_side(self.group_side)
            .with_encoding(encoding);
        if !exploit_symmetry {
            opts = opts.without_symmetry();
        }
        TileStore::build(el, &opts).unwrap()
    }
}

/// Degree vector for PageRank (out-degree / undirected degree).
pub fn degrees(el: &EdgeList) -> Vec<u64> {
    CompactDegrees::from_edge_list(el).unwrap().to_vec()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_scale_builds_all_workloads() {
        let s = Scale::quick();
        let k = s.kron();
        assert_eq!(k.vertex_count(), 1 << 14);
        let t = s.twitter();
        assert!(t.edge_count() > 0);
        let store = s.store(&k);
        assert_eq!(store.edge_count(), k.edge_count());
        assert!(store.layout().tiling().partitions() >= 16);
        assert_eq!(degrees(&k).len(), k.vertex_count() as usize);
    }

    #[test]
    fn ablation_stores_differ_in_size() {
        let s = Scale::quick();
        let k = s.kron();
        let base = s.store_with(&k, EdgeEncoding::Tuple8, false);
        let sym = s.store_with(&k, EdgeEncoding::Tuple8, true);
        let snb = s.store_with(&k, EdgeEncoding::Snb, true);
        assert!(base.data_bytes() > sym.data_bytes());
        assert!(sym.data_bytes() > snb.data_bytes());
        // Base ≈ 2x sym (mirrors); sym = 2x snb (8 vs 4 bytes/edge).
        assert_eq!(sym.data_bytes(), 2 * snb.data_bytes());
    }
}
