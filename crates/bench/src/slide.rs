//! Slide-path measurement arms: the pre-change copy pipeline vs the
//! zero-copy borrow pipeline, plus the `BENCH_slide.json` emitter.
//!
//! The engine no longer contains the copy path (PR 2 removed it), so the
//! baseline is reconstructed here at the store level: both arms "receive"
//! the same contiguous segment runs a slide phase would stream, and both
//! perform identical per-edge compute. The copy arm materialises every
//! tile as an owned `Vec<u8>` first (what `collect_segment` used to do);
//! the borrow arm builds `TileView`s directly over slices of the run
//! buffer (what the engine does now). The difference — wall time, bytes
//! memcpy'd, allocator traffic — is the cost the zero-copy pipeline
//! removed, tracked from this PR onward in `BENCH_slide.json`.

use crate::workloads::{degrees, Scale};
use gstore_core::{GStoreEngine, PageRank, TileView};
use gstore_graph::Result;
use gstore_tile::{TileIndex, TileStore};
use rayon::prelude::*;
use std::alloc::{GlobalAlloc, Layout, System};
use std::ops::Range;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

/// Counting wrapper around the system allocator, installed as the bench
/// crate's `#[global_allocator]` so the arms can report allocator traffic.
/// One relaxed add per call; negligible against real allocation cost.
pub struct CountingAlloc;

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);
static ALLOCATED_BYTES: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        ALLOCATED_BYTES.fetch_add(layout.size() as u64, Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        ALLOCATED_BYTES.fetch_add(layout.size() as u64, Ordering::Relaxed);
        System.alloc_zeroed(layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        ALLOCATED_BYTES.fetch_add(new_size as u64, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }
}

impl CountingAlloc {
    /// `(allocations, allocated_bytes)` so far, process-wide.
    pub fn snapshot() -> (u64, u64) {
        (
            ALLOCATIONS.load(Ordering::Relaxed),
            ALLOCATED_BYTES.load(Ordering::Relaxed),
        )
    }
}

/// The contiguous runs a full-sweep slide phase would stream: every tile,
/// in storage order, batched into segments of at most `seg_bytes` (one
/// run per segment, since a full sweep has no gaps).
pub struct SlideRuns {
    pub index: TileIndex,
    /// `(first_tile, tile_count, byte_range)` per run.
    pub runs: Vec<(u64, u64, Range<u64>)>,
}

/// Plans the full-sweep segment runs for a store.
pub fn plan_full_sweep(store: &TileStore, seg_bytes: u64) -> SlideRuns {
    let index = TileIndex::raw(
        store.layout().clone(),
        store.encoding(),
        store.start_edge().to_vec(),
    );
    let mut runs = Vec::new();
    let mut first = 0u64;
    let n = store.tile_count();
    while first < n {
        let mut last = first;
        let start = index.tile_byte_range(first).start;
        let mut end = index.tile_byte_range(first).end;
        while last + 1 < n && index.tile_byte_range(last + 1).end - start <= seg_bytes {
            last += 1;
            end = index.tile_byte_range(last).end;
        }
        runs.push((first, last - first + 1, start..end));
        first = last + 1;
    }
    SlideRuns { index, runs }
}

/// One measured arm.
#[derive(Debug, Clone, Copy, Default)]
pub struct ArmMeasure {
    pub wall_s: f64,
    /// Allocator calls during the arm.
    pub allocations: u64,
    /// Bytes requested from the allocator during the arm.
    pub allocated_bytes: u64,
    /// Tile bytes memcpy'd out of run buffers (0 for the borrow arm).
    pub bytes_copied: u64,
    /// Edges decoded (identical across arms — the compute is the same).
    pub edges: u64,
}

/// Per-edge work both arms perform, heavy enough that the measurement is
/// processing a tile, not just touching its header.
#[inline]
fn process_tile(view: &TileView) -> (u64, u64) {
    let mut acc = 0u64;
    let mut edges = 0u64;
    for e in view.edges() {
        acc = acc.wrapping_add(e.src ^ e.dst);
        edges += 1;
    }
    (std::hint::black_box(acc), edges)
}

fn tile_batch<'a>(
    sweep: &SlideRuns,
    first: u64,
    count: u64,
    base: u64,
    data: &'a [u8],
) -> Vec<(u64, &'a [u8])> {
    (first..first + count)
        .map(|t| {
            let r = sweep.index.tile_byte_range(t);
            (t, &data[(r.start - base) as usize..(r.end - base) as usize])
        })
        .collect()
}

fn run_batch(sweep: &SlideRuns, batch: &[(u64, &[u8])]) -> u64 {
    let tiling = *sweep.index.layout.tiling();
    let encoding = sweep.index.encoding;
    batch
        .par_iter()
        .map(|&(t, bytes)| {
            let coord = sweep.index.layout.coord_at(t);
            process_tile(&TileView::new(&tiling, coord, encoding, bytes)).1
        })
        .sum()
}

/// The pre-change pipeline: each run buffer is split into per-tile owned
/// copies before any tile is processed (one allocation + one memcpy per
/// tile, per sweep — what `collect_segment` did).
pub fn run_copy_arm(store: &TileStore, sweep: &SlideRuns) -> ArmMeasure {
    let data = store.data();
    let (a0, b0) = CountingAlloc::snapshot();
    let t0 = Instant::now();
    let mut edges = 0u64;
    let mut copied = 0u64;
    for &(first, count, ref range) in &sweep.runs {
        let run = &data[range.start as usize..range.end as usize];
        let owned: Vec<(u64, Vec<u8>)> = (first..first + count)
            .map(|t| {
                let r = sweep.index.tile_byte_range(t);
                let lo = (r.start - range.start) as usize;
                (t, run[lo..lo + (r.end - r.start) as usize].to_vec())
            })
            .collect();
        copied += owned.iter().map(|(_, v)| v.len() as u64).sum::<u64>();
        let batch: Vec<(u64, &[u8])> = owned.iter().map(|(t, v)| (*t, v.as_slice())).collect();
        edges += run_batch(sweep, &batch);
    }
    let wall_s = t0.elapsed().as_secs_f64();
    let (a1, b1) = CountingAlloc::snapshot();
    ArmMeasure {
        wall_s,
        allocations: a1 - a0,
        allocated_bytes: b1 - b0,
        bytes_copied: copied,
        edges,
    }
}

/// The zero-copy pipeline: `TileView`s borrow slices of the run buffer
/// directly, exactly like the engine's `process_run`.
pub fn run_borrow_arm(store: &TileStore, sweep: &SlideRuns) -> ArmMeasure {
    let data = store.data();
    let (a0, b0) = CountingAlloc::snapshot();
    let t0 = Instant::now();
    let mut edges = 0u64;
    for &(first, count, ref range) in &sweep.runs {
        let run = &data[range.start as usize..range.end as usize];
        let batch = tile_batch(sweep, first, count, range.start, run);
        edges += run_batch(sweep, &batch);
    }
    let wall_s = t0.elapsed().as_secs_f64();
    let (a1, b1) = CountingAlloc::snapshot();
    ArmMeasure {
        wall_s,
        allocations: a1 - a0,
        allocated_bytes: b1 - b0,
        bytes_copied: 0,
        edges,
    }
}

fn arm_json(m: &ArmMeasure) -> String {
    format!(
        "{{ \"wall_s\": {:.6}, \"allocations\": {}, \"allocated_bytes\": {}, \
         \"bytes_copied\": {}, \"edges\": {} }}",
        m.wall_s, m.allocations, m.allocated_bytes, m.bytes_copied, m.edges
    )
}

/// Runs both arms (best of `reps`) plus an instrumented engine PageRank at
/// `scale`, and renders the `BENCH_slide.json` payload: the measured
/// copy-vs-borrow delta, and the live engine's own slide-phase counters
/// (bytes copied/borrowed, buffer-pool hit rate, compute/IO overlap).
pub fn slide_json_for_scale(scale: &Scale) -> Result<String> {
    let el = scale.kron();
    let store = scale.store(&el);
    let seg = (store.data_bytes() / 8).max(4096);
    let sweep = plan_full_sweep(&store, seg);

    let reps = 3;
    let mut copy = run_copy_arm(&store, &sweep);
    let mut borrow = run_borrow_arm(&store, &sweep);
    for _ in 1..reps {
        let c = run_copy_arm(&store, &sweep);
        if c.wall_s < copy.wall_s {
            copy = c;
        }
        let b = run_borrow_arm(&store, &sweep);
        if b.wall_s < borrow.wall_s {
            borrow = b;
        }
    }

    // A real engine run over the same graph: the counters behind the
    // Figure 13/14 ablations, scoped to the slide phase.
    let deg = degrees(&el);
    let tiling = *store.layout().tiling();
    let total = store.data_bytes() / 2 + 2 * seg + 4096;
    let cfg = GStoreEngine::builder().scr(gstore_scr::ScrConfig::new(seg, total)?);
    let mut pr = PageRank::new(tiling, deg, 0.85).with_iterations(5);
    let (_, _, m) = crate::model::run_gstore_instrumented(&store, cfg, 2, &mut pr, 5)?;
    let slide_ns: u64 = m.iterations.iter().map(|i| i.slide_ns).sum();
    let slide_compute_ns: u64 = m.iterations.iter().map(|i| i.slide_compute_ns).sum();
    let io_wait_ns: u64 = m.iterations.iter().map(|i| i.io_wait_ns).sum();
    let runs_streamed: u64 = m.iterations.iter().map(|i| i.runs_streamed).sum();

    Ok(format!(
        "{{\n  \"schema\": \"gstore-bench-slide-v1\",\n  \"workload\": {{ \"kron_scale\": {}, \
         \"edge_factor\": {}, \"tile_bits\": {}, \"data_bytes\": {}, \"segment_bytes\": {} }},\n  \
         \"copy_path\": {},\n  \"borrow_path\": {},\n  \"speedup\": {:.4},\n  \
         \"allocation_reduction\": {:.4},\n  \"engine\": {{ \"slide_ns\": {slide_ns}, \
         \"slide_compute_ns\": {slide_compute_ns}, \"io_wait_ns\": {io_wait_ns}, \
         \"runs_streamed\": {runs_streamed}, \"bytes_copied\": {}, \"bytes_borrowed\": {}, \
         \"copy_fraction\": {:.6}, \"buffer_pool_hit_rate\": {:.6} }}\n}}\n",
        scale.kron_scale,
        scale.edge_factor,
        scale.tile_bits,
        store.data_bytes(),
        seg,
        arm_json(&copy),
        arm_json(&borrow),
        copy.wall_s / borrow.wall_s.max(1e-12),
        copy.allocations as f64 / borrow.allocations.max(1) as f64,
        m.copy.bytes_copied,
        m.copy.bytes_borrowed,
        m.copy.copy_fraction(),
        m.buffer_pool.hit_rate(),
    ))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arms_decode_identical_edges_and_only_copy_arm_copies() {
        let s = Scale::quick();
        let el = s.kron();
        let store = s.store(&el);
        let sweep = plan_full_sweep(&store, (store.data_bytes() / 4).max(4096));
        assert!(sweep.runs.len() >= 2, "sweep should have several segments");
        // Runs partition the data exactly.
        let covered: u64 = sweep.runs.iter().map(|(_, _, r)| r.end - r.start).sum();
        assert_eq!(covered, store.data_bytes());
        let copy = run_copy_arm(&store, &sweep);
        let borrow = run_borrow_arm(&store, &sweep);
        assert_eq!(copy.edges, borrow.edges);
        assert!(copy.edges > 0);
        assert_eq!(copy.bytes_copied, store.data_bytes());
        assert_eq!(borrow.bytes_copied, 0);
        // The copy arm pays one allocation per non-empty tile (empty-slice
        // `to_vec()` is allocation-free), so it must out-allocate the
        // borrow arm and request at least the full data size.
        assert!(copy.allocations > borrow.allocations);
        assert!(copy.allocated_bytes >= store.data_bytes());
    }

    #[test]
    fn slide_json_has_schema_and_both_arms() {
        let s = Scale::quick();
        let json = slide_json_for_scale(&s).unwrap();
        for key in [
            "\"schema\": \"gstore-bench-slide-v1\"",
            "\"copy_path\"",
            "\"borrow_path\"",
            "\"bytes_copied\"",
            "\"bytes_borrowed\"",
            "\"buffer_pool_hit_rate\"",
            "\"runs_streamed\"",
        ] {
            assert!(json.contains(key), "missing {key} in {json}");
        }
    }
}
