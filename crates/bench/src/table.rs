//! Plain-text table printing for the repro harness.

/// Prints a titled, column-aligned table to stdout.
pub fn print_table(title: &str, headers: &[&str], rows: &[Vec<String>]) {
    println!();
    println!("== {title} ==");
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            if i < widths.len() {
                widths[i] = widths[i].max(cell.len());
            }
        }
    }
    let line = |cells: &[String]| {
        let mut s = String::new();
        for (i, c) in cells.iter().enumerate() {
            s.push_str(&format!(
                "{:<w$}  ",
                c,
                w = widths.get(i).copied().unwrap_or(0)
            ));
        }
        println!("{}", s.trim_end());
    };
    line(&headers.iter().map(|h| h.to_string()).collect::<Vec<_>>());
    let total: usize = widths.iter().sum::<usize>() + widths.len() * 2;
    println!("{}", "-".repeat(total.max(4)));
    for row in rows {
        line(row);
    }
}

/// Prints a short note under a table (paper expectation, caveat).
pub fn note(text: &str) {
    println!("   note: {text}");
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn print_does_not_panic() {
        print_table(
            "T",
            &["a", "bbbb"],
            &[vec!["1".into(), "2".into()], vec!["333".into(), "4".into()]],
        );
        print_table("empty", &["x"], &[]);
        note("hello");
    }

    #[test]
    fn ragged_rows_tolerated() {
        print_table("r", &["a", "b"], &[vec!["only-one".into()]]);
    }
}
