//! Repro harness: regenerates every table and figure of the G-Store paper
//! at laptop scale.
//!
//! Usage:
//!   repro <experiment|all> [--quick] [--scale N] [--edge-factor N]
//!         [--divisor N] [--tile-bits N] [--group-side N]
//!         [--metrics-json PATH] [--bench-slide-json PATH]
//!         [--bench-compute-json PATH] [--bench-mq-json PATH]
//!         [--bench-ingest-json PATH] [--bench-pointread-json PATH]
//!         [--bench-codec-json PATH] [--bench-serve-json PATH]
//!
//! Flags are parsed with the same [`gstore::cli::Flags`] surface the
//! `gstore` CLI uses, so both binaries accept identical `--key value`
//! spellings.
//!
//! `--metrics-json PATH` additionally runs an instrumented PageRank at the
//! chosen scale and writes the engine's flight-recorder metrics (per-phase
//! timings, I/O counters, cache stats — see docs/METRICS.md) to PATH.
//!
//! `--bench-slide-json PATH` measures the slide path's copy-vs-borrow arms
//! plus the live engine's zero-copy counters and writes `BENCH_slide.json`
//! (bytes copied, allocator traffic, slide-phase wall time) to PATH.
//!
//! `--bench-compute-json PATH` measures the compute phase's atomic-vs-
//! sharded arms plus the live engine's `compute` counter group and writes
//! `BENCH_compute.json` (per-arm wall time, plain-vs-atomic update
//! counts, group-schedule stats) to PATH.
//!
//! `--bench-mq-json PATH` runs the shared-scan multi-query benchmark —
//! eight mixed queries sequentially and then concurrently in one
//! [`gstore::core::QueryBatch`] — and writes `BENCH_mq.json` (aggregate
//! speedup, traffic amortization, flight-recorder reconciliation) to PATH.
//!
//! `--bench-ingest-json PATH` measures conversion ingest — sequential vs
//! parallel in-memory scatter, and the out-of-core streaming converter vs
//! the in-memory one at two edge counts — and writes `BENCH_ingest.json`
//! (scatter speedup, allocator growth, byte-identity, flight-recorder
//! `ingest` counters) to PATH.
//!
//! `--bench-codec-json PATH` measures the bit-level tile codecs — bytes
//! per edge, cursor-decode throughput, and end-to-end PageRank over the
//! coded store on the I/O-constrained simulated array, per codec — and
//! writes `BENCH_codec.json` (footprint, vs-varint ratios, runtimes) to
//! PATH.
//!
//! `--bench-pointread-json PATH` runs the point-read benchmark — Zipf and
//! uniform key streams at 1/4/16 concurrent clients over a cold
//! [`gstore::core::PointReader`] — and writes `BENCH_pointread.json`
//! (p50/p99 latency, hot-tile cache hit rate, bytes per query vs the
//! full-sweep yardstick) to PATH.
//!
//! `--bench-serve-json PATH` benchmarks the `gstore serve` daemon — the
//! mixed workload issued over the wire by 1/8/32 concurrent clients
//! against sequential one-shot runs — and writes `BENCH_serve.json`
//! (throughput, p50/p99 request latency, batch sizes, per-sweep read
//! amortization) to PATH.
//!
//! Run `repro list` to see all experiments.

use bench::experiments::registry;
use bench::workloads::Scale;
use gstore::cli::Flags;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let (pos, flags) = match Flags::parse(&args) {
        Ok(parsed) => parsed,
        Err(e) => {
            eprintln!("{e}");
            usage();
            std::process::exit(2);
        }
    };
    if pos.is_empty() {
        usage();
        std::process::exit(2);
    }
    let which = pos[0].as_str();

    let mut scale = if flags.has("quick") {
        Scale::quick()
    } else {
        Scale::default()
    };
    let num = |key: &str, default: u64| -> u64 {
        flags.get(key, default).unwrap_or_else(|e| {
            eprintln!("{e}");
            std::process::exit(2);
        })
    };
    scale.kron_scale = num("scale", scale.kron_scale as u64) as u32;
    scale.edge_factor = num("edge-factor", scale.edge_factor);
    scale.divisor = num("divisor", scale.divisor);
    scale.tile_bits = num("tile-bits", scale.tile_bits as u64) as u32;
    scale.group_side = num("group-side", scale.group_side as u64) as u32;

    // A JSON-emitting flag needs a path: `--metrics-json` with no value
    // parses as an empty string, which is a usage error.
    let json_path = |key: &str| -> Option<String> {
        if !flags.has(key) {
            return None;
        }
        match flags.get(key, String::new()) {
            Ok(p) if !p.is_empty() => Some(p),
            _ => {
                eprintln!("missing path for --{key}");
                std::process::exit(2);
            }
        }
    };
    let metrics_json = json_path("metrics-json");
    let bench_slide_json = json_path("bench-slide-json");
    let bench_compute_json = json_path("bench-compute-json");
    let bench_mq_json = json_path("bench-mq-json");
    let bench_ingest_json = json_path("bench-ingest-json");
    let bench_io_json = json_path("bench-io-json");
    let bench_pointread_json = json_path("bench-pointread-json");
    let bench_codec_json = json_path("bench-codec-json");
    let bench_serve_json = json_path("bench-serve-json");

    match which {
        "list" => {
            for (name, desc, _) in registry() {
                println!("{name:<8} {desc}");
            }
        }
        "all" => {
            println!("# G-Store paper reproduction (scaled)");
            println!(
                "# kron-scale={} edge-factor={} divisor={} tile-bits={} group-side={}",
                scale.kron_scale,
                scale.edge_factor,
                scale.divisor,
                scale.tile_bits,
                scale.group_side
            );
            for (name, _, run) in registry() {
                eprintln!("[repro] running {name} ...");
                run(&scale);
            }
        }
        name => match registry().into_iter().find(|(n, _, _)| *n == name) {
            Some((_, _, run)) => run(&scale),
            None => {
                eprintln!("unknown experiment '{name}'");
                usage();
                std::process::exit(2);
            }
        },
    }

    let write_json =
        |path: &str, what: &str, json: Result<String, gstore::graph::GraphError>| match json {
            Ok(json) => {
                if let Err(e) = std::fs::write(path, json) {
                    eprintln!("cannot write {path}: {e}");
                    std::process::exit(2);
                }
                eprintln!("[repro] {what} written to {path}");
            }
            Err(e) => {
                eprintln!("{what} failed: {e}");
                std::process::exit(2);
            }
        };

    if let Some(path) = metrics_json {
        eprintln!("[repro] writing flight-recorder metrics (instrumented PageRank) ...");
        write_json(
            &path,
            "metrics",
            bench::model::metrics_json_for_scale(&scale),
        );
    }

    if let Some(path) = bench_slide_json {
        eprintln!("[repro] measuring slide path (copy vs borrow arms) ...");
        write_json(
            &path,
            "slide bench",
            bench::slide::slide_json_for_scale(&scale),
        );
    }

    if let Some(path) = bench_compute_json {
        eprintln!("[repro] measuring compute phase (atomic vs sharded arms) ...");
        write_json(
            &path,
            "compute bench",
            bench::compute::compute_json_for_scale(&scale),
        );
    }

    if let Some(path) = bench_mq_json {
        eprintln!("[repro] measuring shared-scan multi-query batch (sequential vs batch arms) ...");
        write_json(
            &path,
            "multi-query bench",
            bench::multiquery::multiquery_json_for_scale(&scale),
        );
    }

    if let Some(path) = bench_ingest_json {
        eprintln!(
            "[repro] measuring ingest (sequential vs parallel scatter, streaming vs in-memory) ..."
        );
        write_json(
            &path,
            "ingest bench",
            bench::ingest::ingest_json_for_scale(&scale),
        );
    }

    if let Some(path) = bench_io_json {
        eprintln!("[repro] measuring I/O backends (worker pool vs io_uring arms) ...");
        write_json(&path, "io bench", bench::io::io_json_for_scale(&scale));
    }

    if let Some(path) = bench_pointread_json {
        eprintln!("[repro] measuring point reads (zipf vs uniform keys, 1/4/16 clients) ...");
        write_json(
            &path,
            "point-read bench",
            bench::pointread::pointread_json_for_scale(&scale),
        );
    }

    if let Some(path) = bench_codec_json {
        eprintln!("[repro] measuring tile codecs (footprint, decode, end-to-end PageRank) ...");
        write_json(
            &path,
            "codec bench",
            bench::codec::codec_json_for_scale(&scale),
        );
    }

    if let Some(path) = bench_serve_json {
        eprintln!("[repro] measuring serve daemon (1/8/32 concurrent clients vs one-shots) ...");
        write_json(
            &path,
            "serve bench",
            bench::serve::serve_json_for_scale(&scale),
        );
    }
}

fn usage() {
    eprintln!(
        "usage: repro <experiment|all|list> [--quick] [--scale N] [--edge-factor N] \
         [--divisor N] [--tile-bits N] [--group-side N] [--metrics-json PATH] \
         [--bench-slide-json PATH] [--bench-compute-json PATH] [--bench-mq-json PATH] \
         [--bench-ingest-json PATH] [--bench-io-json PATH] [--bench-pointread-json PATH] \
         [--bench-codec-json PATH] [--bench-serve-json PATH]"
    );
}
