//! Repro harness: regenerates every table and figure of the G-Store paper
//! at laptop scale.
//!
//! Usage:
//!   repro <experiment|all> [--quick] [--scale N] [--edge-factor N]
//!         [--divisor N] [--tile-bits N] [--group-side N]
//!         [--metrics-json PATH] [--bench-slide-json PATH]
//!         [--bench-compute-json PATH]
//!
//! `--metrics-json PATH` additionally runs an instrumented PageRank at the
//! chosen scale and writes the engine's flight-recorder metrics (per-phase
//! timings, I/O counters, cache stats — see docs/METRICS.md) to PATH.
//!
//! `--bench-slide-json PATH` measures the slide path's copy-vs-borrow arms
//! plus the live engine's zero-copy counters and writes `BENCH_slide.json`
//! (bytes copied, allocator traffic, slide-phase wall time) to PATH.
//!
//! `--bench-compute-json PATH` measures the compute phase's atomic-vs-
//! sharded arms plus the live engine's `compute` counter group and writes
//! `BENCH_compute.json` (per-arm wall time, plain-vs-atomic update
//! counts, group-schedule stats) to PATH.
//!
//! Run `repro list` to see all experiments.

use bench::experiments::registry;
use bench::workloads::Scale;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.is_empty() {
        usage();
        std::process::exit(2);
    }
    let which = args[0].as_str();
    let mut scale = Scale::default();
    let mut metrics_json: Option<String> = None;
    let mut bench_slide_json: Option<String> = None;
    let mut bench_compute_json: Option<String> = None;
    let mut i = 1;
    while i < args.len() {
        let take_num = |i: &mut usize| -> u64 {
            *i += 1;
            args.get(*i)
                .and_then(|v| v.parse().ok())
                .unwrap_or_else(|| {
                    eprintln!("missing/invalid value for {}", args[*i - 1]);
                    std::process::exit(2);
                })
        };
        match args[i].as_str() {
            "--quick" => scale = Scale::quick(),
            "--scale" => scale.kron_scale = take_num(&mut i) as u32,
            "--edge-factor" => scale.edge_factor = take_num(&mut i),
            "--divisor" => scale.divisor = take_num(&mut i),
            "--tile-bits" => scale.tile_bits = take_num(&mut i) as u32,
            "--group-side" => scale.group_side = take_num(&mut i) as u32,
            "--metrics-json" => {
                i += 1;
                match args.get(i) {
                    Some(p) => metrics_json = Some(p.clone()),
                    None => {
                        eprintln!("missing path for --metrics-json");
                        std::process::exit(2);
                    }
                }
            }
            "--bench-slide-json" => {
                i += 1;
                match args.get(i) {
                    Some(p) => bench_slide_json = Some(p.clone()),
                    None => {
                        eprintln!("missing path for --bench-slide-json");
                        std::process::exit(2);
                    }
                }
            }
            "--bench-compute-json" => {
                i += 1;
                match args.get(i) {
                    Some(p) => bench_compute_json = Some(p.clone()),
                    None => {
                        eprintln!("missing path for --bench-compute-json");
                        std::process::exit(2);
                    }
                }
            }
            other => {
                eprintln!("unknown flag {other}");
                std::process::exit(2);
            }
        }
        i += 1;
    }

    match which {
        "list" => {
            for (name, desc, _) in registry() {
                println!("{name:<8} {desc}");
            }
        }
        "all" => {
            println!("# G-Store paper reproduction (scaled)");
            println!(
                "# kron-scale={} edge-factor={} divisor={} tile-bits={} group-side={}",
                scale.kron_scale,
                scale.edge_factor,
                scale.divisor,
                scale.tile_bits,
                scale.group_side
            );
            for (name, _, run) in registry() {
                eprintln!("[repro] running {name} ...");
                run(&scale);
            }
        }
        name => match registry().into_iter().find(|(n, _, _)| *n == name) {
            Some((_, _, run)) => run(&scale),
            None => {
                eprintln!("unknown experiment '{name}'");
                usage();
                std::process::exit(2);
            }
        },
    }

    if let Some(path) = metrics_json {
        eprintln!("[repro] writing flight-recorder metrics (instrumented PageRank) ...");
        match bench::model::metrics_json_for_scale(&scale) {
            Ok(json) => {
                if let Err(e) = std::fs::write(&path, json) {
                    eprintln!("cannot write {path}: {e}");
                    std::process::exit(2);
                }
                eprintln!("[repro] metrics written to {path}");
            }
            Err(e) => {
                eprintln!("metrics run failed: {e}");
                std::process::exit(2);
            }
        }
    }

    if let Some(path) = bench_slide_json {
        eprintln!("[repro] measuring slide path (copy vs borrow arms) ...");
        match bench::slide::slide_json_for_scale(&scale) {
            Ok(json) => {
                if let Err(e) = std::fs::write(&path, json) {
                    eprintln!("cannot write {path}: {e}");
                    std::process::exit(2);
                }
                eprintln!("[repro] slide bench written to {path}");
            }
            Err(e) => {
                eprintln!("slide bench failed: {e}");
                std::process::exit(2);
            }
        }
    }

    if let Some(path) = bench_compute_json {
        eprintln!("[repro] measuring compute phase (atomic vs sharded arms) ...");
        match bench::compute::compute_json_for_scale(&scale) {
            Ok(json) => {
                if let Err(e) = std::fs::write(&path, json) {
                    eprintln!("cannot write {path}: {e}");
                    std::process::exit(2);
                }
                eprintln!("[repro] compute bench written to {path}");
            }
            Err(e) => {
                eprintln!("compute bench failed: {e}");
                std::process::exit(2);
            }
        }
    }
}

fn usage() {
    eprintln!(
        "usage: repro <experiment|all|list> [--quick] [--scale N] [--edge-factor N] \
         [--divisor N] [--tile-bits N] [--group-side N] [--metrics-json PATH] \
         [--bench-slide-json PATH] [--bench-compute-json PATH]"
    );
}
