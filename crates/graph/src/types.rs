//! Fundamental graph types shared across the G-Store workspace.
//!
//! Vertex identifiers are 64-bit: the paper's largest graph (Kron-33-16)
//! has 2^33 vertices, beyond the reach of `u32`. Inside a tile, vertices
//! are re-encoded with the smallest-number-of-bits representation (see
//! `gstore-tile`), so the wide global type costs nothing on disk.

use std::fmt;

/// Global vertex identifier.
pub type VertexId = u64;

/// Number of edges / index into an edge array.
pub type EdgeIndex = u64;

/// A single directed edge tuple `(src, dst)`.
///
/// For undirected graphs an `Edge` records one arbitrary orientation; the
/// storage layer canonicalises orientation when exploiting symmetry.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
#[repr(C)]
pub struct Edge {
    pub src: VertexId,
    pub dst: VertexId,
}

impl Edge {
    #[inline]
    pub const fn new(src: VertexId, dst: VertexId) -> Self {
        Edge { src, dst }
    }

    /// Returns the edge with endpoints swapped.
    #[inline]
    pub const fn reversed(self) -> Self {
        Edge {
            src: self.dst,
            dst: self.src,
        }
    }

    /// Canonical orientation for undirected storage: `src <= dst`.
    #[inline]
    pub fn canonical(self) -> Self {
        if self.src <= self.dst {
            self
        } else {
            self.reversed()
        }
    }

    /// True if both endpoints are the same vertex.
    #[inline]
    pub const fn is_self_loop(self) -> bool {
        self.src == self.dst
    }
}

impl fmt::Display for Edge {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({}, {})", self.src, self.dst)
    }
}

/// Whether a graph's edges carry a direction.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum GraphKind {
    Directed,
    Undirected,
}

impl GraphKind {
    #[inline]
    pub fn is_directed(self) -> bool {
        matches!(self, GraphKind::Directed)
    }
}

/// Basic metadata describing a graph independent of its physical format.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GraphMeta {
    /// Number of vertices; vertex IDs are `0..vertex_count`.
    pub vertex_count: u64,
    /// Number of stored edge tuples. For undirected graphs this counts each
    /// undirected edge once (the canonical orientation).
    pub edge_count: u64,
    pub kind: GraphKind,
}

impl GraphMeta {
    pub fn new(vertex_count: u64, edge_count: u64, kind: GraphKind) -> Self {
        GraphMeta {
            vertex_count,
            edge_count,
            kind,
        }
    }

    /// Number of bits needed to address any vertex, minimum 1.
    pub fn vertex_bits(&self) -> u32 {
        if self.vertex_count <= 1 {
            1
        } else {
            64 - (self.vertex_count - 1).leading_zeros()
        }
    }
}

/// Errors produced by the graph substrate.
#[derive(Debug)]
pub enum GraphError {
    /// Underlying I/O failure.
    Io(std::io::Error),
    /// A file did not have the expected structure.
    Format(String),
    /// A vertex ID was outside `0..vertex_count`.
    VertexOutOfRange { vertex: VertexId, vertex_count: u64 },
    /// Parameters passed to a generator or builder were inconsistent.
    InvalidParameter(String),
}

impl fmt::Display for GraphError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GraphError::Io(e) => write!(f, "I/O error: {e}"),
            GraphError::Format(m) => write!(f, "format error: {m}"),
            GraphError::VertexOutOfRange {
                vertex,
                vertex_count,
            } => {
                write!(
                    f,
                    "vertex {vertex} out of range (vertex_count={vertex_count})"
                )
            }
            GraphError::InvalidParameter(m) => write!(f, "invalid parameter: {m}"),
        }
    }
}

impl std::error::Error for GraphError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            GraphError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for GraphError {
    fn from(e: std::io::Error) -> Self {
        GraphError::Io(e)
    }
}

pub type Result<T> = std::result::Result<T, GraphError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn edge_canonical_orders_endpoints() {
        assert_eq!(Edge::new(5, 3).canonical(), Edge::new(3, 5));
        assert_eq!(Edge::new(3, 5).canonical(), Edge::new(3, 5));
        assert_eq!(Edge::new(4, 4).canonical(), Edge::new(4, 4));
    }

    #[test]
    fn edge_reversed_swaps() {
        let e = Edge::new(1, 2);
        assert_eq!(e.reversed(), Edge::new(2, 1));
        assert_eq!(e.reversed().reversed(), e);
    }

    #[test]
    fn self_loop_detection() {
        assert!(Edge::new(7, 7).is_self_loop());
        assert!(!Edge::new(7, 8).is_self_loop());
    }

    #[test]
    fn vertex_bits_boundaries() {
        let m = |n| GraphMeta::new(n, 0, GraphKind::Directed).vertex_bits();
        assert_eq!(m(0), 1);
        assert_eq!(m(1), 1);
        assert_eq!(m(2), 1);
        assert_eq!(m(3), 2);
        assert_eq!(m(4), 2);
        assert_eq!(m(5), 3);
        assert_eq!(m(1 << 16), 16);
        assert_eq!(m((1 << 16) + 1), 17);
    }

    #[test]
    fn graph_kind_direction() {
        assert!(GraphKind::Directed.is_directed());
        assert!(!GraphKind::Undirected.is_directed());
    }

    #[test]
    fn error_display_is_informative() {
        let e = GraphError::VertexOutOfRange {
            vertex: 9,
            vertex_count: 4,
        };
        let s = e.to_string();
        assert!(s.contains('9') && s.contains('4'));
    }
}
