//! Compact degree array (§IV.C of the paper).
//!
//! Power-law graphs have mostly tiny degrees with a few enormous ones.
//! G-Store stores each degree in 2 bytes: values up to `i16::MAX` are kept
//! inline with the MSB clear; larger degrees set the MSB and store an index
//! into a small `u64` overflow table. This halves the degree array compared
//! to a flat `u32` layout (e.g. 4 GB -> 2 GB for Kron-30-16) and is valid
//! whenever fewer than 32,768 vertices exceed the inline range.

use crate::csr::Csr;
use crate::edgelist::EdgeList;
use crate::types::{GraphError, Result, VertexId};

/// Largest degree representable inline (15 bits).
pub const INLINE_MAX: u64 = i16::MAX as u64; // 32,767
/// Maximum number of overflow entries the MSB scheme can index.
pub const MAX_OVERFLOW: usize = 1 << 15;

const OVERFLOW_FLAG: u16 = 1 << 15;

/// Degree array with 2-byte entries and an overflow table for hubs.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CompactDegrees {
    inline: Vec<u16>,
    overflow: Vec<u64>,
}

impl CompactDegrees {
    /// Builds from a plain degree vector.
    ///
    /// Fails with [`GraphError::InvalidParameter`] when more than
    /// [`MAX_OVERFLOW`] vertices exceed [`INLINE_MAX`], the documented
    /// limit of the optimization.
    pub fn from_degrees(degrees: &[u64]) -> Result<Self> {
        let mut inline = Vec::with_capacity(degrees.len());
        let mut overflow = Vec::new();
        for &d in degrees {
            if d <= INLINE_MAX {
                inline.push(d as u16);
            } else {
                if overflow.len() >= MAX_OVERFLOW {
                    return Err(GraphError::InvalidParameter(format!(
                        "more than {MAX_OVERFLOW} vertices exceed degree {INLINE_MAX}; \
                         compact degree encoding is inapplicable"
                    )));
                }
                inline.push(OVERFLOW_FLAG | overflow.len() as u16);
                overflow.push(d);
            }
        }
        Ok(CompactDegrees { inline, overflow })
    }

    /// Out-degree (or undirected degree) array of an edge list.
    pub fn from_edge_list(el: &EdgeList) -> Result<Self> {
        let mut degrees = vec![0u64; el.vertex_count() as usize];
        let undirected = !el.kind().is_directed();
        for e in el.edges() {
            degrees[e.src as usize] += 1;
            if undirected && !e.is_self_loop() {
                degrees[e.dst as usize] += 1;
            }
        }
        Self::from_degrees(&degrees)
    }

    /// Degree array of a CSR (degree in the CSR's stored direction).
    pub fn from_csr(csr: &Csr) -> Result<Self> {
        let degrees: Vec<u64> = (0..csr.vertex_count()).map(|v| csr.degree(v)).collect();
        Self::from_degrees(&degrees)
    }

    /// Number of vertices covered.
    #[inline]
    pub fn len(&self) -> usize {
        self.inline.len()
    }

    #[inline]
    pub fn is_empty(&self) -> bool {
        self.inline.is_empty()
    }

    /// Degree of vertex `v`.
    #[inline]
    pub fn degree(&self, v: VertexId) -> u64 {
        let raw = self.inline[v as usize];
        if raw & OVERFLOW_FLAG == 0 {
            raw as u64
        } else {
            self.overflow[(raw & !OVERFLOW_FLAG) as usize]
        }
    }

    /// Number of vertices whose degree lives in the overflow table.
    #[inline]
    pub fn overflow_count(&self) -> usize {
        self.overflow.len()
    }

    /// Bytes used by this compact encoding.
    pub fn size_bytes(&self) -> u64 {
        (self.inline.len() * 2 + self.overflow.len() * 8) as u64
    }

    /// Bytes a flat array with `width` bytes per entry would use, for
    /// savings accounting.
    pub fn flat_size_bytes(&self, width: u64) -> u64 {
        self.inline.len() as u64 * width
    }

    /// Expands back to a plain `u64` degree vector.
    pub fn to_vec(&self) -> Vec<u64> {
        (0..self.len() as u64).map(|v| self.degree(v)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::{Edge, GraphKind};

    #[test]
    fn inline_and_overflow_mix() {
        let degrees = vec![0, 1, INLINE_MAX, INLINE_MAX + 1, 5, 1 << 40];
        let c = CompactDegrees::from_degrees(&degrees).unwrap();
        assert_eq!(c.to_vec(), degrees);
        assert_eq!(c.overflow_count(), 2);
    }

    #[test]
    fn boundary_values() {
        let c = CompactDegrees::from_degrees(&[INLINE_MAX]).unwrap();
        assert_eq!(c.overflow_count(), 0);
        let c = CompactDegrees::from_degrees(&[INLINE_MAX + 1]).unwrap();
        assert_eq!(c.overflow_count(), 1);
        assert_eq!(c.degree(0), INLINE_MAX + 1);
    }

    #[test]
    fn too_many_hubs_rejected() {
        let degrees = vec![INLINE_MAX + 1; MAX_OVERFLOW + 1];
        assert!(CompactDegrees::from_degrees(&degrees).is_err());
        let degrees = vec![INLINE_MAX + 1; MAX_OVERFLOW];
        assert!(CompactDegrees::from_degrees(&degrees).is_ok());
    }

    #[test]
    fn sizes_halve_flat_u32() {
        let degrees = vec![3u64; 1000];
        let c = CompactDegrees::from_degrees(&degrees).unwrap();
        assert_eq!(c.size_bytes(), 2000);
        assert_eq!(c.flat_size_bytes(4), 4000);
    }

    #[test]
    fn from_edge_list_counts_both_ends_when_undirected() {
        let el = EdgeList::new(
            3,
            GraphKind::Undirected,
            vec![Edge::new(0, 1), Edge::new(1, 2), Edge::new(2, 2)],
        )
        .unwrap();
        let c = CompactDegrees::from_edge_list(&el).unwrap();
        assert_eq!(c.to_vec(), vec![1, 2, 2]); // self-loop counts once
    }

    #[test]
    fn from_edge_list_directed_is_out_degree() {
        let el = EdgeList::new(
            3,
            GraphKind::Directed,
            vec![Edge::new(0, 1), Edge::new(0, 2), Edge::new(1, 0)],
        )
        .unwrap();
        let c = CompactDegrees::from_edge_list(&el).unwrap();
        assert_eq!(c.to_vec(), vec![2, 1, 0]);
    }

    #[test]
    fn from_csr_matches_csr_degrees() {
        let el = EdgeList::new(
            4,
            GraphKind::Directed,
            vec![Edge::new(0, 1), Edge::new(0, 2), Edge::new(3, 0)],
        )
        .unwrap();
        let csr = Csr::from_edge_list(&el, crate::csr::CsrDirection::Out);
        let c = CompactDegrees::from_csr(&csr).unwrap();
        for v in 0..4 {
            assert_eq!(c.degree(v), csr.degree(v));
        }
    }

    #[test]
    fn empty() {
        let c = CompactDegrees::from_degrees(&[]).unwrap();
        assert!(c.is_empty());
        assert_eq!(c.size_bytes(), 0);
    }
}
