//! Text edge-list ingestion and export (SNAP / Graph500-challenge style).
//!
//! Real-world graphs arrive as whitespace-separated `src dst` lines with
//! `#` or `%` comment lines. The parser is tolerant of blank lines and
//! infers the vertex count (max ID + 1) when not supplied.

use crate::edgelist::EdgeList;
use crate::types::{Edge, GraphError, GraphKind, Result, VertexId};
use std::fs::File;
use std::io::{BufRead, BufReader, BufWriter, Write};
use std::path::Path;

/// Reads a whitespace-separated text edge list.
///
/// * Lines starting with `#` or `%` are comments; blank lines skipped.
/// * Each data line must contain at least two integer fields (extra
///   fields, e.g. weights or timestamps, are ignored).
/// * `vertex_count`: pass `Some(n)` to validate IDs against a known count,
///   or `None` to infer `max_id + 1`.
pub fn read_text(path: &Path, kind: GraphKind, vertex_count: Option<u64>) -> Result<EdgeList> {
    let file = File::open(path)?;
    let reader = BufReader::new(file);
    let mut edges: Vec<Edge> = Vec::new();
    let mut max_id: u64 = 0;
    for (lineno, line) in reader.lines().enumerate() {
        let line = line?;
        let t = line.trim();
        if t.is_empty() || t.starts_with('#') || t.starts_with('%') {
            continue;
        }
        let mut fields = t.split_whitespace();
        let parse = |s: Option<&str>| -> Result<VertexId> {
            s.ok_or_else(|| GraphError::Format(format!("line {}: missing field", lineno + 1)))?
                .parse::<u64>()
                .map_err(|e| GraphError::Format(format!("line {}: {e}", lineno + 1)))
        };
        let src = parse(fields.next())?;
        let dst = parse(fields.next())?;
        max_id = max_id.max(src).max(dst);
        edges.push(Edge::new(src, dst));
    }
    let n = match vertex_count {
        Some(n) => n,
        None => {
            if edges.is_empty() {
                0
            } else {
                max_id + 1
            }
        }
    };
    EdgeList::new(n, kind, edges)
}

/// Writes an edge list as `src dst` lines with a descriptive header.
pub fn write_text(el: &EdgeList, path: &Path) -> Result<()> {
    let file = File::create(path)?;
    let mut w = BufWriter::new(file);
    writeln!(
        w,
        "# gstore edge list: {} vertices, {} edges, {:?}",
        el.vertex_count(),
        el.edge_count(),
        el.kind()
    )?;
    for e in el.edges() {
        writeln!(w, "{}\t{}", e.src, e.dst)?;
    }
    w.flush()?;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn write_tmp(content: &str) -> (tempfile::TempDir, std::path::PathBuf) {
        let dir = tempfile::tempdir().unwrap();
        let path = dir.path().join("g.txt");
        std::fs::write(&path, content).unwrap();
        (dir, path)
    }

    #[test]
    fn parses_snap_style_input() {
        let (_d, path) =
            write_tmp("# comment\n% another comment\n\n0 1\n1\t2\n2 0 99 extra-ignored\n");
        let el = read_text(&path, GraphKind::Directed, None).unwrap();
        assert_eq!(el.vertex_count(), 3);
        assert_eq!(
            el.edges(),
            &[Edge::new(0, 1), Edge::new(1, 2), Edge::new(2, 0)]
        );
    }

    #[test]
    fn explicit_vertex_count_validated() {
        let (_d, path) = write_tmp("0 5\n");
        assert!(read_text(&path, GraphKind::Directed, Some(4)).is_err());
        assert!(read_text(&path, GraphKind::Directed, Some(6)).is_ok());
    }

    #[test]
    fn malformed_lines_rejected_with_line_numbers() {
        let (_d, path) = write_tmp("0 1\nnot-a-number 2\n");
        let err = read_text(&path, GraphKind::Directed, None).unwrap_err();
        assert!(err.to_string().contains("line 2"), "{err}");
        let (_d2, path2) = write_tmp("0\n");
        let err = read_text(&path2, GraphKind::Directed, None).unwrap_err();
        assert!(err.to_string().contains("missing field"));
    }

    #[test]
    fn empty_file_gives_empty_graph() {
        let (_d, path) = write_tmp("# nothing here\n");
        let el = read_text(&path, GraphKind::Undirected, None).unwrap();
        assert_eq!(el.vertex_count(), 0);
        assert_eq!(el.edge_count(), 0);
    }

    #[test]
    fn roundtrip() {
        let dir = tempfile::tempdir().unwrap();
        let path = dir.path().join("rt.txt");
        let el = EdgeList::new(
            10,
            GraphKind::Undirected,
            vec![Edge::new(0, 9), Edge::new(3, 3), Edge::new(7, 2)],
        )
        .unwrap();
        write_text(&el, &path).unwrap();
        let back = read_text(&path, GraphKind::Undirected, Some(10)).unwrap();
        assert_eq!(back.edges(), el.edges());
    }
}
