//! Inventory of the paper's evaluation graphs (Table II) with generator
//! recipes.
//!
//! Full-scale counts are kept so storage arithmetic (Table II) can be
//! reproduced exactly; `generate(divisor)` materialises a scaled-down
//! graph with the same shape for runnable experiments.

use crate::edgelist::EdgeList;
use crate::gen::{
    generate_powerlaw, generate_random, generate_rmat, PowerLawParams, RandomParams, RmatParams,
};
use crate::types::{GraphKind, Result};

/// One row of the paper's Table II.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PaperGraph {
    pub name: &'static str,
    pub kind: GraphKind,
    /// Vertex count at full (paper) scale.
    pub vertex_count: u64,
    /// Edge tuples as the paper counts them: for undirected graphs this is
    /// the *bidirectional* tuple count (each edge twice), matching the
    /// edge-list sizes reported in Table II.
    pub edge_tuples: u64,
    recipe: Recipe,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Recipe {
    Kron { scale: u32, edge_factor: u64 },
    Rmat { scale: u32, edge_factor: u64 },
    Random { scale: u32, edge_factor: u64 },
    Twitter,
    Friendster,
    Subdomain,
}

impl PaperGraph {
    /// Whether this graph's *canonical* stored edge count is half the tuple
    /// count (undirected symmetry).
    pub fn canonical_edge_count(&self) -> u64 {
        match self.kind {
            GraphKind::Undirected => self.edge_tuples / 2,
            GraphKind::Directed => self.edge_tuples,
        }
    }

    /// Materialises a runnable, scaled-down instance. `divisor` shrinks
    /// synthetic-graph scales logarithmically (each factor of ~8 removes 3
    /// from the scale) and real-graph counts linearly.
    pub fn generate(&self, divisor: u64) -> Result<EdgeList> {
        let shrink = |scale: u32| -> u32 {
            let drop = 64 - divisor.max(1).leading_zeros() - 1; // log2(divisor)
            scale.saturating_sub(drop).max(8)
        };
        match self.recipe {
            Recipe::Kron { scale, edge_factor } => {
                generate_rmat(&RmatParams::kron(shrink(scale), edge_factor))
            }
            Recipe::Rmat { scale, edge_factor } => {
                let mut p = RmatParams::kron(shrink(scale), edge_factor);
                // Classic RMAT parameterisation, slightly less skewed.
                p.a = 0.45;
                p.b = 0.22;
                p.c = 0.22;
                generate_rmat(&p)
            }
            Recipe::Random { scale, edge_factor } => {
                generate_random(&RandomParams::scaled(shrink(scale), edge_factor))
            }
            Recipe::Twitter => generate_powerlaw(&PowerLawParams::twitter_like(divisor)),
            Recipe::Friendster => generate_powerlaw(&PowerLawParams::friendster_like(divisor)),
            Recipe::Subdomain => generate_powerlaw(&PowerLawParams::subdomain_like(divisor)),
        }
    }
}

/// All nine graphs of Table II, in paper order.
pub const PAPER_GRAPHS: &[PaperGraph] = &[
    PaperGraph {
        name: "Twitter",
        kind: GraphKind::Directed,
        vertex_count: 52_579_682,
        edge_tuples: 1_963_263_821,
        recipe: Recipe::Twitter,
    },
    PaperGraph {
        name: "Friendster",
        kind: GraphKind::Directed,
        vertex_count: 68_349_466,
        edge_tuples: 2_586_147_869,
        recipe: Recipe::Friendster,
    },
    PaperGraph {
        name: "Subdomain",
        kind: GraphKind::Directed,
        vertex_count: 101_717_775,
        edge_tuples: 2_043_203_933,
        recipe: Recipe::Subdomain,
    },
    PaperGraph {
        name: "Rmat-28-16",
        kind: GraphKind::Undirected,
        vertex_count: 1 << 28,
        edge_tuples: 1 << 33,
        recipe: Recipe::Rmat {
            scale: 28,
            edge_factor: 16,
        },
    },
    PaperGraph {
        name: "Random-27-32",
        kind: GraphKind::Undirected,
        vertex_count: 1 << 27,
        edge_tuples: 1 << 33,
        recipe: Recipe::Random {
            scale: 27,
            edge_factor: 32,
        },
    },
    PaperGraph {
        name: "Kron-28-16",
        kind: GraphKind::Undirected,
        vertex_count: 1 << 28,
        edge_tuples: 1 << 33,
        recipe: Recipe::Kron {
            scale: 28,
            edge_factor: 16,
        },
    },
    PaperGraph {
        name: "Kron-30-16",
        kind: GraphKind::Undirected,
        vertex_count: 1 << 30,
        edge_tuples: 1 << 35,
        recipe: Recipe::Kron {
            scale: 30,
            edge_factor: 16,
        },
    },
    PaperGraph {
        name: "Kron-33-16",
        kind: GraphKind::Undirected,
        vertex_count: 1 << 33,
        edge_tuples: 1 << 38,
        recipe: Recipe::Kron {
            scale: 33,
            edge_factor: 16,
        },
    },
    PaperGraph {
        name: "Kron-31-256",
        kind: GraphKind::Undirected,
        vertex_count: 1 << 31,
        edge_tuples: 1 << 40,
        recipe: Recipe::Kron {
            scale: 31,
            edge_factor: 256,
        },
    },
];

/// Looks up a paper graph by name (case-insensitive).
pub fn paper_graph(name: &str) -> Option<&'static PaperGraph> {
    PAPER_GRAPHS
        .iter()
        .find(|g| g.name.eq_ignore_ascii_case(name))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn inventory_matches_table2() {
        assert_eq!(PAPER_GRAPHS.len(), 9);
        let kron33 = paper_graph("kron-33-16").unwrap();
        assert_eq!(kron33.vertex_count, 1 << 33);
        assert_eq!(kron33.edge_tuples, 1 << 38);
        assert_eq!(kron33.canonical_edge_count(), 1 << 37);
        let twitter = paper_graph("Twitter").unwrap();
        assert_eq!(twitter.canonical_edge_count(), twitter.edge_tuples);
    }

    #[test]
    fn lookup_unknown_is_none() {
        assert!(paper_graph("nope").is_none());
    }

    #[test]
    fn generation_scales_down() {
        let g = paper_graph("Kron-28-16")
            .unwrap()
            .generate(1 << 18)
            .unwrap();
        // scale 28 - 18 = 10
        assert_eq!(g.vertex_count(), 1 << 10);
        assert_eq!(g.edge_count(), 16 << 10);
    }

    #[test]
    fn real_graph_generation_scales_linearly() {
        let g = paper_graph("Twitter").unwrap().generate(10_000).unwrap();
        assert_eq!(g.vertex_count(), 5_257);
        assert_eq!(g.edge_count(), 196_326);
    }

    #[test]
    fn all_graphs_generate_tiny_instances() {
        for pg in PAPER_GRAPHS {
            let g = pg.generate(1 << 20).unwrap();
            assert!(g.vertex_count() > 0, "{} generated empty", pg.name);
            assert!(g.edge_count() > 0, "{} generated no edges", pg.name);
        }
    }
}
