//! Graph substrate for the G-Store workspace.
//!
//! This crate provides the representations the paper's Section II surveys —
//! edge lists, CSR, degree arrays — plus synthetic graph generators matching
//! the evaluation datasets, and reference algorithm implementations used as
//! correctness oracles by the tile engine and the baselines.
//!
//! The space-efficient *tile* format that is G-Store's contribution lives in
//! the `gstore-tile` crate, built on top of these primitives.

pub mod csr;
pub mod datasets;
pub mod degree;
pub mod edgelist;
pub mod gen;
pub mod reference;
pub mod stats;
pub mod text;
pub mod types;

pub use csr::{Csr, CsrDirection};
pub use datasets::{paper_graph, PaperGraph, PAPER_GRAPHS};
pub use degree::CompactDegrees;
pub use edgelist::{EdgeChunks, EdgeFileHeader, EdgeList, TupleWidth, EDGE_FILE_HEADER_BYTES};
pub use types::{Edge, EdgeIndex, GraphError, GraphKind, GraphMeta, Result, VertexId};
