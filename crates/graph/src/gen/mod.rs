//! Synthetic graph generators: RMAT/Kronecker, uniform random, and
//! power-law ("Twitter-like") graphs. All generators are parallel and
//! deterministic for a fixed seed.

pub mod powerlaw;
pub mod random;
pub mod rmat;

pub use powerlaw::{generate as generate_powerlaw, PowerLawParams};
pub use random::{generate as generate_random, RandomParams};
pub use rmat::{generate as generate_rmat, RmatParams};
