//! RMAT / Kronecker graph generator.
//!
//! The paper's synthetic graphs are Graph500-style Kronecker graphs named
//! `Kron-<scale>-<edge factor>`: `2^scale` vertices and
//! `edge_factor * 2^scale` edges. RMAT recursively subdivides the adjacency
//! matrix into quadrants chosen with probabilities (a, b, c, d). Graph500's
//! Kronecker generator corresponds to (0.57, 0.19, 0.19, 0.05).

use crate::edgelist::EdgeList;
use crate::types::{Edge, GraphError, GraphKind, Result, VertexId};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use rayon::prelude::*;

/// Parameters for the RMAT / Kronecker generator.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RmatParams {
    /// log2 of the vertex count.
    pub scale: u32,
    /// Edges generated per vertex (`|E| = edge_factor << scale`).
    pub edge_factor: u64,
    /// Quadrant probabilities; must sum to ~1.
    pub a: f64,
    pub b: f64,
    pub c: f64,
    /// Whether the produced graph is directed.
    pub kind: GraphKind,
    /// RNG seed; generation is deterministic for a fixed seed and
    /// parameters (independent of thread count).
    pub seed: u64,
}

impl RmatParams {
    /// Graph500-style Kronecker parameters, e.g. `kron(20, 16)` is the
    /// scaled-down analogue of the paper's Kron-28-16.
    pub fn kron(scale: u32, edge_factor: u64) -> Self {
        RmatParams {
            scale,
            edge_factor,
            a: 0.57,
            b: 0.19,
            c: 0.19,
            kind: GraphKind::Undirected,
            seed: 0x9e3779b97f4a7c15,
        }
    }

    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    pub fn with_kind(mut self, kind: GraphKind) -> Self {
        self.kind = kind;
        self
    }

    pub fn vertex_count(&self) -> u64 {
        1u64 << self.scale
    }

    pub fn edge_count(&self) -> u64 {
        self.edge_factor << self.scale
    }

    fn validate(&self) -> Result<()> {
        if self.scale == 0 || self.scale > 40 {
            return Err(GraphError::InvalidParameter(format!(
                "rmat scale {} out of supported range 1..=40",
                self.scale
            )));
        }
        let d = 1.0 - self.a - self.b - self.c;
        if self.a < 0.0 || self.b < 0.0 || self.c < 0.0 || d < -1e-9 {
            return Err(GraphError::InvalidParameter(
                "rmat probabilities must be non-negative and sum to <= 1".into(),
            ));
        }
        Ok(())
    }
}

/// Generates one RMAT edge by descending `scale` levels of the recursion.
#[inline]
fn rmat_edge(rng: &mut StdRng, p: &RmatParams) -> Edge {
    let mut src: VertexId = 0;
    let mut dst: VertexId = 0;
    let ab = p.a + p.b;
    let abc = ab + p.c;
    for _ in 0..p.scale {
        src <<= 1;
        dst <<= 1;
        let r: f64 = rng.gen();
        if r < p.a {
            // top-left quadrant: no bits set
        } else if r < ab {
            dst |= 1;
        } else if r < abc {
            src |= 1;
        } else {
            src |= 1;
            dst |= 1;
        }
    }
    Edge::new(src, dst)
}

/// Generates an RMAT/Kronecker edge list in parallel.
///
/// Determinism: the edge stream is split into fixed chunks, each seeded by
/// `(seed, chunk_index)`, so output is identical across thread counts.
pub fn generate(params: &RmatParams) -> Result<EdgeList> {
    params.validate()?;
    let total = params.edge_count();
    const CHUNK: u64 = 1 << 16;
    let chunks = total.div_ceil(CHUNK);
    let edges: Vec<Edge> = (0..chunks)
        .into_par_iter()
        .flat_map_iter(|ci| {
            let mut rng = chunk_rng(params.seed, ci);
            let n = CHUNK.min(total - ci * CHUNK);
            let p = *params;
            (0..n).map(move |_| rmat_edge(&mut rng, &p))
        })
        .collect();
    Ok(EdgeList::from_parts_unchecked(
        params.vertex_count(),
        params.kind,
        edges,
    ))
}

pub(crate) fn chunk_rng(seed: u64, chunk: u64) -> StdRng {
    // SplitMix64-style mix so per-chunk streams are decorrelated.
    let mut z = seed ^ chunk.wrapping_mul(0x9e3779b97f4a7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
    StdRng::seed_from_u64(z ^ (z >> 31))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counts_match_parameters() {
        let p = RmatParams::kron(10, 8);
        let g = generate(&p).unwrap();
        assert_eq!(g.vertex_count(), 1 << 10);
        assert_eq!(g.edge_count(), 8 << 10);
        for e in g.edges() {
            assert!(e.src < g.vertex_count() && e.dst < g.vertex_count());
        }
    }

    #[test]
    fn deterministic_across_runs() {
        let p = RmatParams::kron(8, 4).with_seed(42);
        let a = generate(&p).unwrap();
        let b = generate(&p).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn seed_changes_output() {
        let a = generate(&RmatParams::kron(8, 4).with_seed(1)).unwrap();
        let b = generate(&RmatParams::kron(8, 4).with_seed(2)).unwrap();
        assert_ne!(a, b);
    }

    #[test]
    fn skew_present() {
        // RMAT should concentrate edges on low-ID vertices (quadrant a is
        // largest): vertex 0's degree must far exceed the mean.
        let g = generate(&RmatParams::kron(12, 16)).unwrap();
        let mut deg = vec![0u64; g.vertex_count() as usize];
        for e in g.edges() {
            deg[e.src as usize] += 1;
        }
        let mean = g.edge_count() / g.vertex_count();
        assert!(deg[0] > mean * 10, "deg[0]={} mean={}", deg[0], mean);
    }

    #[test]
    fn invalid_params_rejected() {
        let mut p = RmatParams::kron(0, 4);
        assert!(generate(&p).is_err());
        p = RmatParams::kron(4, 4);
        p.a = 1.5;
        assert!(generate(&p).is_err());
        p = RmatParams::kron(4, 4);
        p.a = -0.1;
        assert!(generate(&p).is_err());
    }

    #[test]
    fn uniform_quadrants_give_uniformish_degrees() {
        let mut p = RmatParams::kron(10, 16);
        p.a = 0.25;
        p.b = 0.25;
        p.c = 0.25;
        let g = generate(&p).unwrap();
        let mut deg = vec![0u64; g.vertex_count() as usize];
        for e in g.edges() {
            deg[e.src as usize] += 1;
        }
        let mean = (g.edge_count() / g.vertex_count()) as f64;
        let max = *deg.iter().max().unwrap() as f64;
        assert!(max < mean * 4.0, "max={} mean={}", max, mean);
    }
}
