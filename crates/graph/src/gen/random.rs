//! Uniform random (Erdős–Rényi G(n, m)) graph generator.
//!
//! The paper's `Random-27-32` graph is a uniform random graph with 2^27
//! vertices and 32 * 2^27 edges; endpoints are drawn independently and
//! uniformly.

use crate::edgelist::EdgeList;
use crate::gen::rmat::chunk_rng;
use crate::types::{Edge, GraphError, GraphKind, Result};
use rand::Rng;
use rayon::prelude::*;

/// Parameters for the uniform random generator.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RandomParams {
    pub vertex_count: u64,
    pub edge_count: u64,
    pub kind: GraphKind,
    pub seed: u64,
}

impl RandomParams {
    /// `Random-<scale>-<edge factor>` naming from the paper.
    pub fn scaled(scale: u32, edge_factor: u64) -> Self {
        RandomParams {
            vertex_count: 1 << scale,
            edge_count: edge_factor << scale,
            kind: GraphKind::Undirected,
            seed: 0x853c49e6748fea9b,
        }
    }

    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    pub fn with_kind(mut self, kind: GraphKind) -> Self {
        self.kind = kind;
        self
    }
}

/// Generates a uniform random multigraph in parallel, deterministically for
/// a fixed seed.
pub fn generate(params: &RandomParams) -> Result<EdgeList> {
    if params.vertex_count == 0 {
        return Err(GraphError::InvalidParameter(
            "random graph needs at least one vertex".into(),
        ));
    }
    let n = params.vertex_count;
    let total = params.edge_count;
    const CHUNK: u64 = 1 << 16;
    let chunks = total.div_ceil(CHUNK);
    let edges: Vec<Edge> = (0..chunks)
        .into_par_iter()
        .flat_map_iter(|ci| {
            let mut rng = chunk_rng(params.seed, ci);
            let count = CHUNK.min(total - ci * CHUNK);
            (0..count).map(move |_| Edge::new(rng.gen_range(0..n), rng.gen_range(0..n)))
        })
        .collect();
    Ok(EdgeList::from_parts_unchecked(n, params.kind, edges))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counts_and_ranges() {
        let p = RandomParams::scaled(10, 4);
        let g = generate(&p).unwrap();
        assert_eq!(g.vertex_count(), 1024);
        assert_eq!(g.edge_count(), 4096);
        assert!(g.edges().iter().all(|e| e.src < 1024 && e.dst < 1024));
    }

    #[test]
    fn deterministic() {
        let p = RandomParams::scaled(8, 8).with_seed(7);
        assert_eq!(generate(&p).unwrap(), generate(&p).unwrap());
    }

    #[test]
    fn roughly_uniform_degrees() {
        let p = RandomParams::scaled(8, 64);
        let g = generate(&p).unwrap();
        let mut deg = vec![0u64; 256];
        for e in g.edges() {
            deg[e.src as usize] += 1;
        }
        let mean = (g.edge_count() / 256) as f64;
        let max = *deg.iter().max().unwrap() as f64;
        // Poisson tail: max should stay within a small factor of the mean.
        assert!(max < mean * 3.0, "max={max} mean={mean}");
    }

    #[test]
    fn zero_vertices_rejected() {
        let p = RandomParams {
            vertex_count: 0,
            edge_count: 0,
            kind: GraphKind::Directed,
            seed: 1,
        };
        assert!(generate(&p).is_err());
    }

    #[test]
    fn non_power_of_two_vertex_count() {
        let p = RandomParams {
            vertex_count: 1000,
            edge_count: 5000,
            kind: GraphKind::Directed,
            seed: 3,
        };
        let g = generate(&p).unwrap();
        assert_eq!(g.vertex_count(), 1000);
        assert!(g.edges().iter().all(|e| e.src < 1000 && e.dst < 1000));
    }
}
