//! Power-law ("Twitter-like") graph generator.
//!
//! The paper evaluates on three real social/web graphs (Twitter,
//! Friendster, Subdomain). Those datasets are not redistributable here, so
//! we synthesize graphs with matching skew: endpoints are sampled from a
//! rank power law `P(v) ∝ (v+1)^{-r}` via an analytic inverse CDF, which
//! reproduces the heavy-tailed tile-occupancy histograms of Figures 5 and 7
//! (a large fraction of empty tiles, a few enormous ones).

use crate::edgelist::EdgeList;
use crate::gen::rmat::chunk_rng;
use crate::types::{Edge, GraphError, GraphKind, Result, VertexId};
use rand::Rng;
use rayon::prelude::*;

/// Parameters for the power-law generator.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PowerLawParams {
    pub vertex_count: u64,
    pub edge_count: u64,
    /// Rank exponent for sources (larger = more skew). 0 = uniform.
    pub src_exponent: f64,
    /// Rank exponent for destinations.
    pub dst_exponent: f64,
    /// When true, hub vertices are scattered across the ID space with a
    /// bijective hash instead of clustering at low IDs — matching real
    /// datasets whose crawl order decorrelates ID and degree.
    pub scatter_hubs: bool,
    pub kind: GraphKind,
    pub seed: u64,
}

impl PowerLawParams {
    /// A generic skewed graph.
    pub fn new(vertex_count: u64, edge_count: u64) -> Self {
        PowerLawParams {
            vertex_count,
            edge_count,
            src_exponent: 0.75,
            dst_exponent: 0.9,
            scatter_hubs: true,
            kind: GraphKind::Directed,
            seed: 0xda3e39cb94b95bdb,
        }
    }

    /// Twitter-shaped graph scaled down by `divisor` (divisor 1 = the real
    /// 52.6M-vertex / 1.96B-edge size; tests use large divisors).
    ///
    /// Hubs stay clustered (`scatter_hubs = false`): the real dataset's
    /// tile-occupancy histogram (Figure 5: 40% empty tiles, one 36M-edge
    /// tile) comes from exactly this ID/degree correlation.
    pub fn twitter_like(divisor: u64) -> Self {
        let mut p = Self::new(52_579_682 / divisor.max(1), 1_963_263_821 / divisor.max(1));
        p.src_exponent = 0.8;
        p.dst_exponent = 1.0; // follower counts are the heavier tail
        p.scatter_hubs = false;
        p
    }

    /// Friendster-shaped graph scaled down by `divisor`.
    pub fn friendster_like(divisor: u64) -> Self {
        let mut p = Self::new(68_349_466 / divisor.max(1), 2_586_147_869 / divisor.max(1));
        p.src_exponent = 0.6;
        p.dst_exponent = 0.6; // friendship graph: milder skew
        p.scatter_hubs = false;
        p
    }

    /// Subdomain/web-shaped graph scaled down by `divisor`.
    pub fn subdomain_like(divisor: u64) -> Self {
        let mut p = Self::new(101_717_775 / divisor.max(1), 2_043_203_933 / divisor.max(1));
        p.src_exponent = 0.85;
        p.dst_exponent = 1.05; // web link graphs are extremely skewed
        p.scatter_hubs = false;
        p
    }

    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    pub fn with_kind(mut self, kind: GraphKind) -> Self {
        self.kind = kind;
        self
    }
}

/// Samples a vertex rank from `P(v) ∝ (v+1)^{-r}` by inverting the
/// continuous CDF. `u` must be in `[0, 1)`.
#[inline]
fn sample_rank(u: f64, n: u64, r: f64) -> u64 {
    debug_assert!(n > 0);
    if r.abs() < 1e-9 {
        return ((u * n as f64) as u64).min(n - 1);
    }
    let nf = n as f64;
    let v = if (r - 1.0).abs() < 1e-9 {
        // CDF(x) = ln(1+x) / ln(1+n)
        ((1.0 + nf).powf(u) - 1.0).floor()
    } else {
        let p = 1.0 - r;
        // CDF(x) = ((1+x)^p - 1) / ((1+n)^p - 1)
        let top = (1.0 + nf).powf(p) - 1.0;
        ((1.0 + u * top).powf(1.0 / p) - 1.0).floor()
    };
    (v as u64).min(n - 1)
}

/// Bijective scatter of ranks over `[0, n)` via cycle walking: an
/// add/multiply/xorshift permutation over the next power of two, re-applied
/// until the value lands in range. Each step is a bijection mod `2^bits`,
/// so the composition restricted to `[0, n)` is a permutation of `[0, n)`.
#[inline]
fn scatter(v: u64, n: u64) -> u64 {
    if n <= 1 {
        return 0;
    }
    let bits = 64 - (n - 1).leading_zeros();
    let mask = if bits == 64 {
        u64::MAX
    } else {
        (1u64 << bits) - 1
    };
    let mut x = v;
    loop {
        x = x.wrapping_add(0xd1b54a32d192ed03) & mask;
        x = x.wrapping_mul(0x9e3779b97f4a7c15) & mask; // odd multiplier: bijective

        x ^= x >> (bits / 2).max(1);
        x = x.wrapping_mul(0xbf58476d1ce4e5b5) & mask;
        if x < n {
            return x;
        }
    }
}

/// Generates a power-law edge list, deterministic for a fixed seed.
pub fn generate(params: &PowerLawParams) -> Result<EdgeList> {
    if params.vertex_count == 0 {
        return Err(GraphError::InvalidParameter(
            "power-law graph needs at least one vertex".into(),
        ));
    }
    if params.src_exponent < 0.0 || params.dst_exponent < 0.0 {
        return Err(GraphError::InvalidParameter(
            "exponents must be non-negative".into(),
        ));
    }
    let n = params.vertex_count;
    let total = params.edge_count;
    const CHUNK: u64 = 1 << 16;
    let chunks = total.div_ceil(CHUNK);
    let p = *params;
    let edges: Vec<Edge> = (0..chunks)
        .into_par_iter()
        .flat_map_iter(move |ci| {
            let mut rng = chunk_rng(p.seed, ci);
            let count = CHUNK.min(total - ci * CHUNK);
            (0..count).map(move |_| {
                let mut s: VertexId = sample_rank(rng.gen(), n, p.src_exponent);
                let mut d: VertexId = sample_rank(rng.gen(), n, p.dst_exponent);
                if p.scatter_hubs {
                    s = scatter(s, n);
                    d = scatter(d, n);
                }
                Edge::new(s, d)
            })
        })
        .collect();
    Ok(EdgeList::from_parts_unchecked(n, params.kind, edges))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counts_and_ranges() {
        let p = PowerLawParams::new(1000, 8000);
        let g = generate(&p).unwrap();
        assert_eq!(g.vertex_count(), 1000);
        assert_eq!(g.edge_count(), 8000);
        assert!(g.edges().iter().all(|e| e.src < 1000 && e.dst < 1000));
    }

    #[test]
    fn deterministic() {
        let p = PowerLawParams::new(512, 4096).with_seed(11);
        assert_eq!(generate(&p).unwrap(), generate(&p).unwrap());
    }

    #[test]
    fn heavy_tail_in_destinations() {
        let mut p = PowerLawParams::new(4096, 1 << 16);
        p.scatter_hubs = false;
        let g = generate(&p).unwrap();
        let mut deg = vec![0u64; 4096];
        for e in g.edges() {
            deg[e.dst as usize] += 1;
        }
        let mean = (g.edge_count() / 4096) as f64;
        // Rank 0 must be a hub; the median vertex must be below the mean.
        assert!(
            deg[0] as f64 > mean * 20.0,
            "hub degree {} mean {}",
            deg[0],
            mean
        );
        let mut sorted = deg.clone();
        sorted.sort_unstable();
        assert!((sorted[2048] as f64) < mean);
    }

    #[test]
    fn scatter_decouples_id_and_degree() {
        let mut p = PowerLawParams::new(4096, 1 << 16);
        p.scatter_hubs = true;
        let g = generate(&p).unwrap();
        let mut deg = vec![0u64; 4096];
        for e in g.edges() {
            deg[e.dst as usize] += 1;
        }
        // The top hub should usually not be vertex 0 once scattered.
        let hub = deg.iter().enumerate().max_by_key(|(_, d)| **d).unwrap().0;
        assert_ne!(hub, 0);
    }

    #[test]
    fn sample_rank_uniform_when_zero_exponent() {
        let lo = sample_rank(0.0, 100, 0.0);
        let hi = sample_rank(0.999, 100, 0.0);
        assert_eq!(lo, 0);
        assert_eq!(hi, 99);
    }

    #[test]
    fn sample_rank_bounds() {
        for &r in &[0.0, 0.5, 1.0, 1.5] {
            for &u in &[0.0, 0.25, 0.5, 0.9999] {
                let v = sample_rank(u, 1000, r);
                assert!(v < 1000, "r={r} u={u} v={v}");
            }
        }
    }

    #[test]
    fn scatter_is_a_permutation() {
        for &n in &[1u64, 2, 7, 100, 1000, 1024] {
            let mut seen = vec![false; n as usize];
            for v in 0..n {
                let s = scatter(v, n);
                assert!(s < n);
                assert!(!seen[s as usize], "collision at n={n} v={v}");
                seen[s as usize] = true;
            }
        }
    }

    #[test]
    fn presets_scale() {
        let p = PowerLawParams::twitter_like(1000);
        assert_eq!(p.vertex_count, 52_579);
        assert_eq!(p.edge_count, 1_963_263);
        assert!(PowerLawParams::friendster_like(10_000).vertex_count > 0);
        assert!(PowerLawParams::subdomain_like(10_000).vertex_count > 0);
    }

    #[test]
    fn invalid_params_rejected() {
        let mut p = PowerLawParams::new(0, 10);
        assert!(generate(&p).is_err());
        p = PowerLawParams::new(10, 10);
        p.src_exponent = -1.0;
        assert!(generate(&p).is_err());
    }
}
