//! Reference in-memory implementations of the paper's three algorithms
//! (BFS, PageRank, connected components).
//!
//! These run on plain CSR and serve as correctness oracles for the tile
//! engine and the baseline engines; they are deliberately simple and
//! sequential.

use crate::csr::{Csr, CsrDirection};
use crate::edgelist::EdgeList;
use crate::types::VertexId;
use std::collections::VecDeque;

/// Depth assigned to unreached vertices.
pub const UNREACHED: u32 = u32::MAX;

/// Level-synchronous BFS from `root` over a CSR.
///
/// For a directed traversal build the CSR with [`CsrDirection::Out`]; for an
/// undirected traversal build it from an undirected edge list (neighbors in
/// both orientations).
pub fn bfs_levels(csr: &Csr, root: VertexId) -> Vec<u32> {
    let n = csr.vertex_count() as usize;
    let mut depth = vec![UNREACHED; n];
    if n == 0 {
        return depth;
    }
    let mut queue = VecDeque::new();
    depth[root as usize] = 0;
    queue.push_back(root);
    while let Some(v) = queue.pop_front() {
        let next = depth[v as usize] + 1;
        for &u in csr.neighbors(v) {
            if depth[u as usize] == UNREACHED {
                depth[u as usize] = next;
                queue.push_back(u);
            }
        }
    }
    depth
}

/// Standard damped PageRank with uniform teleport, run for `iterations`
/// rounds over out-edges. Returns per-vertex ranks summing to ~1 when the
/// graph has no dangling vertices.
#[allow(clippy::needless_range_loop)] // `v` indexes both the CSR and the rank arrays
pub fn pagerank(csr_out: &Csr, iterations: usize, damping: f64) -> Vec<f64> {
    let n = csr_out.vertex_count() as usize;
    if n == 0 {
        return Vec::new();
    }
    let base = (1.0 - damping) / n as f64;
    let mut rank = vec![1.0 / n as f64; n];
    let mut next = vec![0.0f64; n];
    for _ in 0..iterations {
        next.iter_mut().for_each(|x| *x = 0.0);
        let mut dangling = 0.0;
        for v in 0..n {
            let nbrs = csr_out.neighbors(v as VertexId);
            if nbrs.is_empty() {
                dangling += rank[v];
                continue;
            }
            let share = rank[v] / nbrs.len() as f64;
            for &u in nbrs {
                next[u as usize] += share;
            }
        }
        let dangling_share = dangling / n as f64;
        for x in next.iter_mut() {
            *x = base + damping * (*x + dangling_share);
        }
        std::mem::swap(&mut rank, &mut next);
    }
    rank
}

/// Connected components via union-find over the raw edge list, ignoring
/// edge direction (i.e. weakly connected components for directed graphs).
/// Returns the smallest vertex ID in each vertex's component — the same
/// labelling the paper's label-propagation algorithm converges to.
pub fn wcc_labels(el: &EdgeList) -> Vec<VertexId> {
    let n = el.vertex_count() as usize;
    let mut parent: Vec<u64> = (0..n as u64).collect();

    fn find(parent: &mut [u64], mut v: u64) -> u64 {
        while parent[v as usize] != v {
            let gp = parent[parent[v as usize] as usize];
            parent[v as usize] = gp;
            v = gp;
        }
        v
    }

    for e in el.edges() {
        let (a, b) = (find(&mut parent, e.src), find(&mut parent, e.dst));
        if a != b {
            // Union by smaller ID so roots are component minima.
            if a < b {
                parent[b as usize] = a;
            } else {
                parent[a as usize] = b;
            }
        }
    }
    (0..n as u64).map(|v| find(&mut parent, v)).collect()
}

/// Number of distinct components in a WCC labelling.
pub fn component_count(labels: &[VertexId]) -> usize {
    let mut roots: Vec<VertexId> = labels
        .iter()
        .enumerate()
        .filter(|(v, l)| **l == *v as VertexId)
        .map(|(_, l)| *l)
        .collect();
    roots.sort_unstable();
    roots.dedup();
    roots.len()
}

/// Builds the CSR orientation the reference BFS expects for a graph.
pub fn bfs_csr(el: &EdgeList) -> Csr {
    Csr::from_edge_list(el, CsrDirection::Out)
}

/// Strongly connected components via iterative Tarjan. Returns the
/// smallest vertex ID of each vertex's SCC (the canonical labelling the
/// tile-based forward-backward algorithm also produces).
pub fn scc_labels(el: &EdgeList) -> Vec<VertexId> {
    let csr = Csr::from_edge_list(el, CsrDirection::Out);
    let n = csr.vertex_count() as usize;
    const NONE: u64 = u64::MAX;
    let mut index = vec![NONE; n];
    let mut low = vec![0u64; n];
    let mut on_stack = vec![false; n];
    let mut comp = vec![NONE; n];
    let mut stack: Vec<u64> = Vec::new();
    let mut next_index = 0u64;

    // Explicit DFS state machine: (vertex, next-neighbor position).
    let mut call: Vec<(u64, usize)> = Vec::new();
    for start in 0..n as u64 {
        if index[start as usize] != NONE {
            continue;
        }
        call.push((start, 0));
        index[start as usize] = next_index;
        low[start as usize] = next_index;
        next_index += 1;
        stack.push(start);
        on_stack[start as usize] = true;
        while let Some(&mut (v, ref mut pos)) = call.last_mut() {
            let nbrs = csr.neighbors(v);
            if *pos < nbrs.len() {
                let u = nbrs[*pos];
                *pos += 1;
                if index[u as usize] == NONE {
                    index[u as usize] = next_index;
                    low[u as usize] = next_index;
                    next_index += 1;
                    stack.push(u);
                    on_stack[u as usize] = true;
                    call.push((u, 0));
                } else if on_stack[u as usize] {
                    low[v as usize] = low[v as usize].min(index[u as usize]);
                }
            } else {
                call.pop();
                if let Some(&mut (parent, _)) = call.last_mut() {
                    low[parent as usize] = low[parent as usize].min(low[v as usize]);
                }
                if low[v as usize] == index[v as usize] {
                    // Root of an SCC: pop its members, label by minimum ID.
                    let mut members = Vec::new();
                    loop {
                        let w = stack.pop().unwrap();
                        on_stack[w as usize] = false;
                        members.push(w);
                        if w == v {
                            break;
                        }
                    }
                    let label = *members.iter().min().unwrap();
                    for w in members {
                        comp[w as usize] = label;
                    }
                }
            }
        }
    }
    comp
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::{Edge, GraphKind};

    fn fig1() -> EdgeList {
        EdgeList::new(
            8,
            GraphKind::Undirected,
            vec![
                Edge::new(0, 1),
                Edge::new(0, 3),
                Edge::new(0, 4),
                Edge::new(1, 2),
                Edge::new(1, 4),
                Edge::new(2, 4),
                Edge::new(4, 5),
                Edge::new(5, 6),
                Edge::new(5, 7),
            ],
        )
        .unwrap()
    }

    #[test]
    fn bfs_depths_on_fig1() {
        let csr = bfs_csr(&fig1());
        let d = bfs_levels(&csr, 0);
        assert_eq!(d, vec![0, 1, 2, 1, 1, 2, 3, 3]);
    }

    #[test]
    fn bfs_unreachable_marked() {
        let el = EdgeList::new(
            4,
            GraphKind::Directed,
            vec![Edge::new(0, 1), Edge::new(2, 3)],
        )
        .unwrap();
        let csr = bfs_csr(&el);
        let d = bfs_levels(&csr, 0);
        assert_eq!(d, vec![0, 1, UNREACHED, UNREACHED]);
    }

    #[test]
    fn wcc_on_two_components() {
        let el = EdgeList::new(
            6,
            GraphKind::Undirected,
            vec![Edge::new(0, 1), Edge::new(1, 2), Edge::new(4, 5)],
        )
        .unwrap();
        let labels = wcc_labels(&el);
        assert_eq!(labels, vec![0, 0, 0, 3, 4, 4]);
        assert_eq!(component_count(&labels), 3);
    }

    #[test]
    fn wcc_ignores_direction() {
        let el = EdgeList::new(
            3,
            GraphKind::Directed,
            vec![Edge::new(2, 0), Edge::new(1, 0)],
        )
        .unwrap();
        assert_eq!(wcc_labels(&el), vec![0, 0, 0]);
    }

    #[test]
    fn pagerank_sums_to_one() {
        let el = fig1();
        let csr = Csr::from_edge_list(&el, CsrDirection::Out);
        let pr = pagerank(&csr, 30, 0.85);
        let sum: f64 = pr.iter().sum();
        assert!((sum - 1.0).abs() < 1e-9, "sum={sum}");
        // Hub vertex 4 must outrank leaf vertex 3.
        assert!(pr[4] > pr[3]);
    }

    #[test]
    fn pagerank_uniform_on_cycle() {
        let el = EdgeList::new(
            4,
            GraphKind::Directed,
            vec![
                Edge::new(0, 1),
                Edge::new(1, 2),
                Edge::new(2, 3),
                Edge::new(3, 0),
            ],
        )
        .unwrap();
        let csr = Csr::from_edge_list(&el, CsrDirection::Out);
        let pr = pagerank(&csr, 50, 0.85);
        for r in &pr {
            assert!((r - 0.25).abs() < 1e-9);
        }
    }

    #[test]
    fn pagerank_handles_dangling() {
        // 0 -> 1, vertex 1 dangles; mass must be redistributed, not lost.
        let el = EdgeList::new(2, GraphKind::Directed, vec![Edge::new(0, 1)]).unwrap();
        let csr = Csr::from_edge_list(&el, CsrDirection::Out);
        let pr = pagerank(&csr, 60, 0.85);
        let sum: f64 = pr.iter().sum();
        assert!((sum - 1.0).abs() < 1e-9);
        assert!(pr[1] > pr[0]);
    }

    #[test]
    fn scc_on_two_cycles_and_a_bridge() {
        // 0->1->2->0 (SCC {0,1,2}), 3->4->3 (SCC {3,4}), bridge 2->3.
        let el = EdgeList::new(
            5,
            GraphKind::Directed,
            vec![
                Edge::new(0, 1),
                Edge::new(1, 2),
                Edge::new(2, 0),
                Edge::new(3, 4),
                Edge::new(4, 3),
                Edge::new(2, 3),
            ],
        )
        .unwrap();
        assert_eq!(scc_labels(&el), vec![0, 0, 0, 3, 3]);
    }

    #[test]
    fn scc_dag_is_all_singletons() {
        let el = EdgeList::new(
            4,
            GraphKind::Directed,
            vec![Edge::new(0, 1), Edge::new(1, 2), Edge::new(0, 3)],
        )
        .unwrap();
        assert_eq!(scc_labels(&el), vec![0, 1, 2, 3]);
    }

    #[test]
    fn scc_long_cycle_no_stack_overflow() {
        // 10k-vertex cycle: one SCC; recursion-free Tarjan must handle it.
        let n = 10_000u64;
        let edges: Vec<Edge> = (0..n).map(|i| Edge::new(i, (i + 1) % n)).collect();
        let el = EdgeList::new(n, GraphKind::Directed, edges).unwrap();
        let labels = scc_labels(&el);
        assert!(labels.iter().all(|&l| l == 0));
    }

    #[test]
    fn scc_undirected_equals_wcc() {
        // Treating each undirected edge as two arcs makes SCC == WCC.
        let el = EdgeList::new(
            6,
            GraphKind::Undirected,
            vec![Edge::new(0, 1), Edge::new(1, 2), Edge::new(4, 5)],
        )
        .unwrap();
        assert_eq!(scc_labels(&el), wcc_labels(&el));
    }

    #[test]
    fn empty_graph_edge_cases() {
        let el = EdgeList::new(0, GraphKind::Directed, vec![]).unwrap();
        let csr = bfs_csr(&el);
        assert!(bfs_levels(&csr, 0).is_empty());
        assert!(pagerank(&csr, 5, 0.85).is_empty());
        assert!(wcc_labels(&el).is_empty());
        assert_eq!(component_count(&[]), 0);
    }
}
