//! Degree-distribution statistics.
//!
//! Power-law skew is the property G-Store's design leans on everywhere
//! (tile occupancy, compact degrees, proactive caching); this module
//! quantifies it: log2-bucketed histograms, percentiles, and a simple
//! skew summary used by the CLI and by generator validation tests.

/// Summary of a degree distribution.
#[derive(Debug, Clone, PartialEq)]
pub struct DegreeDistribution {
    /// `buckets[i]` counts vertices with degree in `[2^(i-1)+1 .. 2^i]`,
    /// except `buckets[0]` which counts degree 0 and `buckets[1]` degree 1.
    pub buckets: Vec<u64>,
    pub vertex_count: u64,
    pub edge_endpoints: u64,
    pub max_degree: u64,
    pub mean_degree: f64,
}

impl DegreeDistribution {
    /// Builds the distribution from a plain degree vector.
    pub fn from_degrees(degrees: &[u64]) -> Self {
        let mut buckets = Vec::new();
        let mut max = 0u64;
        let mut sum = 0u64;
        for &d in degrees {
            let b = bucket_of(d);
            if buckets.len() <= b {
                buckets.resize(b + 1, 0);
            }
            buckets[b] += 1;
            max = max.max(d);
            sum += d;
        }
        DegreeDistribution {
            buckets,
            vertex_count: degrees.len() as u64,
            edge_endpoints: sum,
            max_degree: max,
            mean_degree: if degrees.is_empty() {
                0.0
            } else {
                sum as f64 / degrees.len() as f64
            },
        }
    }

    /// Fraction of vertices with degree zero.
    pub fn isolated_fraction(&self) -> f64 {
        if self.vertex_count == 0 {
            return 0.0;
        }
        self.buckets.first().copied().unwrap_or(0) as f64 / self.vertex_count as f64
    }

    /// The degree at or below which `q` (0..=1) of the vertices fall.
    pub fn percentile(&self, degrees: &[u64], q: f64) -> u64 {
        if degrees.is_empty() {
            return 0;
        }
        let mut sorted = degrees.to_vec();
        sorted.sort_unstable();
        let idx = ((sorted.len() - 1) as f64 * q.clamp(0.0, 1.0)).round() as usize;
        sorted[idx]
    }

    /// Skew ratio: max degree over mean degree (1 for regular graphs,
    /// huge for power-law graphs).
    pub fn skew(&self) -> f64 {
        if self.mean_degree <= 0.0 {
            0.0
        } else {
            self.max_degree as f64 / self.mean_degree
        }
    }

    /// Human-readable bucket rows `(label, count)` for printing.
    pub fn rows(&self) -> Vec<(String, u64)> {
        self.buckets
            .iter()
            .enumerate()
            .map(|(i, &c)| (bucket_label(i), c))
            .collect()
    }
}

#[inline]
fn bucket_of(d: u64) -> usize {
    match d {
        0 => 0,
        1 => 1,
        _ => (64 - (d - 1).leading_zeros()) as usize + 1,
    }
}

fn bucket_label(i: usize) -> String {
    match i {
        0 => "0".into(),
        1 => "1".into(),
        _ => format!("{}..{}", (1u64 << (i - 2)) + 1, 1u64 << (i - 1)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_boundaries() {
        assert_eq!(bucket_of(0), 0);
        assert_eq!(bucket_of(1), 1);
        assert_eq!(bucket_of(2), 2);
        assert_eq!(bucket_of(3), 3);
        assert_eq!(bucket_of(4), 3);
        assert_eq!(bucket_of(5), 4);
        assert_eq!(bucket_of(8), 4);
        assert_eq!(bucket_of(9), 5);
        assert_eq!(bucket_label(3), "3..4");
        assert_eq!(bucket_label(4), "5..8");
    }

    #[test]
    fn summary_on_known_degrees() {
        let degrees = [0u64, 0, 1, 2, 4, 100];
        let d = DegreeDistribution::from_degrees(&degrees);
        assert_eq!(d.vertex_count, 6);
        assert_eq!(d.edge_endpoints, 107);
        assert_eq!(d.max_degree, 100);
        assert!((d.isolated_fraction() - 2.0 / 6.0).abs() < 1e-12);
        assert_eq!(d.buckets[0], 2);
        assert_eq!(d.buckets[1], 1);
        assert_eq!(d.percentile(&degrees, 0.5), 2); // round-half-up on 6 samples
        assert_eq!(d.percentile(&degrees, 1.0), 100);
        assert!(d.skew() > 5.0);
    }

    #[test]
    fn empty_distribution() {
        let d = DegreeDistribution::from_degrees(&[]);
        assert_eq!(d.vertex_count, 0);
        assert_eq!(d.isolated_fraction(), 0.0);
        assert_eq!(d.skew(), 0.0);
        assert!(d.rows().is_empty());
    }

    #[test]
    fn powerlaw_generator_is_skewed_uniform_is_not() {
        use crate::degree::CompactDegrees;
        use crate::gen::{generate_powerlaw, generate_random, PowerLawParams, RandomParams};
        let pl = generate_powerlaw(&PowerLawParams::twitter_like(50_000)).unwrap();
        let pl_deg = CompactDegrees::from_edge_list(&pl).unwrap().to_vec();
        let pl_dist = DegreeDistribution::from_degrees(&pl_deg);
        let un = generate_random(&RandomParams::scaled(10, 16)).unwrap();
        let un_deg = CompactDegrees::from_edge_list(&un).unwrap().to_vec();
        let un_dist = DegreeDistribution::from_degrees(&un_deg);
        assert!(
            pl_dist.skew() > 10.0 * un_dist.skew(),
            "powerlaw {} vs uniform {}",
            pl_dist.skew(),
            un_dist.skew()
        );
    }

    #[test]
    fn bucket_totals_cover_all_vertices() {
        let degrees: Vec<u64> = (0..1000).map(|i| i % 37).collect();
        let d = DegreeDistribution::from_degrees(&degrees);
        assert_eq!(d.buckets.iter().sum::<u64>(), 1000);
    }
}
