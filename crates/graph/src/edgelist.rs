//! Edge-list graph representation (Figure 1(b) of the paper) and its
//! binary on-disk format.
//!
//! The on-disk tuple width is configurable because one of the paper's
//! motivating observations (Figure 2(a)) is that halving the tuple size
//! from 16 to 8 bytes roughly doubles streaming PageRank performance.

use crate::types::{Edge, GraphError, GraphKind, GraphMeta, Result, VertexId};
use std::fs::File;
use std::io::{BufReader, BufWriter, Read, Seek, SeekFrom, Write};
use std::path::Path;

/// Bytes used per vertex endpoint in a serialized edge tuple.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TupleWidth {
    /// Two `u32` endpoints: 8 bytes per edge (graphs with < 2^32 vertices).
    U32,
    /// Two `u64` endpoints: 16 bytes per edge.
    U64,
}

impl TupleWidth {
    /// Bytes per serialized edge tuple.
    #[inline]
    pub const fn edge_bytes(self) -> usize {
        match self {
            TupleWidth::U32 => 8,
            TupleWidth::U64 => 16,
        }
    }

    /// The narrowest width able to address `vertex_count` vertices.
    pub fn for_vertex_count(vertex_count: u64) -> Self {
        if vertex_count <= u32::MAX as u64 + 1 {
            TupleWidth::U32
        } else {
            TupleWidth::U64
        }
    }
}

/// A graph stored as a flat collection of edge tuples.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EdgeList {
    meta: GraphMeta,
    edges: Vec<Edge>,
}

impl EdgeList {
    /// Builds an edge list, validating that every endpoint is in range.
    pub fn new(vertex_count: u64, kind: GraphKind, edges: Vec<Edge>) -> Result<Self> {
        for e in &edges {
            if e.src >= vertex_count {
                return Err(GraphError::VertexOutOfRange {
                    vertex: e.src,
                    vertex_count,
                });
            }
            if e.dst >= vertex_count {
                return Err(GraphError::VertexOutOfRange {
                    vertex: e.dst,
                    vertex_count,
                });
            }
        }
        let meta = GraphMeta::new(vertex_count, edges.len() as u64, kind);
        Ok(EdgeList { meta, edges })
    }

    /// Builds without validating endpoints. Callers must guarantee ranges.
    pub fn from_parts_unchecked(vertex_count: u64, kind: GraphKind, edges: Vec<Edge>) -> Self {
        let meta = GraphMeta::new(vertex_count, edges.len() as u64, kind);
        EdgeList { meta, edges }
    }

    #[inline]
    pub fn meta(&self) -> GraphMeta {
        self.meta
    }

    #[inline]
    pub fn vertex_count(&self) -> u64 {
        self.meta.vertex_count
    }

    #[inline]
    pub fn edge_count(&self) -> u64 {
        self.edges.len() as u64
    }

    #[inline]
    pub fn kind(&self) -> GraphKind {
        self.meta.kind
    }

    #[inline]
    pub fn edges(&self) -> &[Edge] {
        &self.edges
    }

    #[inline]
    pub fn edges_mut(&mut self) -> &mut [Edge] {
        &mut self.edges
    }

    pub fn into_edges(self) -> Vec<Edge> {
        self.edges
    }

    /// Returns the transpose: every edge reversed. For directed graphs
    /// this converts an out-edge store into an in-edge store (§IV.A: "it
    /// stores either in-edges or out-edges for directed graphs").
    pub fn reversed(&self) -> EdgeList {
        let edges = self.edges.iter().map(|e| e.reversed()).collect();
        EdgeList::from_parts_unchecked(self.meta.vertex_count, self.meta.kind, edges)
    }

    /// Canonicalises every edge to `src <= dst` (undirected storage form).
    /// Returns an error if called on a directed graph, where orientation is
    /// meaningful.
    pub fn canonicalize(&mut self) -> Result<()> {
        if self.meta.kind.is_directed() {
            return Err(GraphError::InvalidParameter(
                "cannot canonicalize a directed graph".into(),
            ));
        }
        for e in &mut self.edges {
            *e = e.canonical();
        }
        Ok(())
    }

    /// Removes duplicate edges and self-loops in place. For undirected
    /// graphs, edges equal up to orientation are considered duplicates.
    pub fn dedup_and_simplify(&mut self) {
        let undirected = !self.meta.kind.is_directed();
        let mut edges = std::mem::take(&mut self.edges);
        if undirected {
            for e in &mut edges {
                *e = e.canonical();
            }
        }
        edges.retain(|e| !e.is_self_loop());
        edges.sort_unstable();
        edges.dedup();
        self.edges = edges;
        self.meta.edge_count = self.edges.len() as u64;
    }

    /// Size in bytes of the serialized edge list at a given tuple width.
    pub fn disk_size(&self, width: TupleWidth) -> u64 {
        self.edge_count() * width.edge_bytes() as u64
    }

    /// Serializes the edge list to `path` in little-endian binary tuples.
    ///
    /// Layout: a 32-byte header (magic, tuple width, vertex count, edge
    /// count, kind) followed by tightly packed tuples.
    pub fn write_binary(&self, path: &Path, width: TupleWidth) -> Result<()> {
        if width == TupleWidth::U32 && self.meta.vertex_count > u32::MAX as u64 + 1 {
            return Err(GraphError::InvalidParameter(format!(
                "tuple width U32 cannot address {} vertices",
                self.meta.vertex_count
            )));
        }
        let file = File::create(path)?;
        let mut w = BufWriter::new(file);
        w.write_all(MAGIC)?;
        w.write_all(&[width_tag(width), kind_tag(self.meta.kind), 0, 0])?;
        w.write_all(&self.meta.vertex_count.to_le_bytes())?;
        w.write_all(&self.meta.edge_count.to_le_bytes())?;
        match width {
            TupleWidth::U32 => {
                for e in &self.edges {
                    w.write_all(&(e.src as u32).to_le_bytes())?;
                    w.write_all(&(e.dst as u32).to_le_bytes())?;
                }
            }
            TupleWidth::U64 => {
                for e in &self.edges {
                    w.write_all(&e.src.to_le_bytes())?;
                    w.write_all(&e.dst.to_le_bytes())?;
                }
            }
        }
        w.flush()?;
        Ok(())
    }

    /// Reads an edge list previously written by [`EdgeList::write_binary`].
    pub fn read_binary(path: &Path) -> Result<Self> {
        let (mut r, header) = open_validated(path)?;
        let width = header.width;
        let mut edges = Vec::with_capacity(header.edge_count as usize);
        let mut buf = vec![0u8; width.edge_bytes() * READ_CHUNK_EDGES];
        let mut remaining = header.edge_count as usize;
        while remaining > 0 {
            let n = remaining.min(READ_CHUNK_EDGES);
            let bytes = n * width.edge_bytes();
            r.read_exact(&mut buf[..bytes])
                .map_err(|_| GraphError::Format("edge list file truncated".into()))?;
            decode_tuples(&buf[..bytes], width, &mut edges);
            remaining -= n;
        }
        EdgeList::new(header.vertex_count, header.kind, edges)
    }
}

/// The parsed, length-validated 24-byte header of a binary edge file.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EdgeFileHeader {
    pub width: TupleWidth,
    pub kind: GraphKind,
    pub vertex_count: u64,
    pub edge_count: u64,
}

/// Byte length of the binary edge-file header.
pub const EDGE_FILE_HEADER_BYTES: u64 = 24;

/// Opens `path`, parses the header, and validates the claimed edge count
/// against the file length (so nothing proportional to an untrusted count
/// is allocated later). The returned reader is positioned at the first
/// tuple.
fn open_validated(path: &Path) -> Result<(BufReader<File>, EdgeFileHeader)> {
    let file = File::open(path)?;
    let mut r = BufReader::new(file);
    let mut header = [0u8; EDGE_FILE_HEADER_BYTES as usize];
    r.read_exact(&mut header)
        .map_err(|_| GraphError::Format("edge list file shorter than header".into()))?;
    if &header[0..4] != MAGIC {
        return Err(GraphError::Format("bad magic in edge list file".into()));
    }
    let width = match header[4] {
        0 => TupleWidth::U32,
        1 => TupleWidth::U64,
        t => return Err(GraphError::Format(format!("unknown tuple width tag {t}"))),
    };
    let kind = match header[5] {
        0 => GraphKind::Directed,
        1 => GraphKind::Undirected,
        t => return Err(GraphError::Format(format!("unknown graph kind tag {t}"))),
    };
    let vertex_count = u64::from_le_bytes(header[8..16].try_into().unwrap());
    let edge_count = u64::from_le_bytes(header[16..24].try_into().unwrap());
    let file_len = std::fs::metadata(path)?.len();
    let expected = EDGE_FILE_HEADER_BYTES.checked_add(
        edge_count
            .checked_mul(width.edge_bytes() as u64)
            .ok_or_else(|| GraphError::Format("edge count overflows".into()))?,
    );
    if expected != Some(file_len) {
        return Err(GraphError::Format(format!(
            "edge list claims {edge_count} edges but file is {file_len} bytes"
        )));
    }
    Ok((
        r,
        EdgeFileHeader {
            width,
            kind,
            vertex_count,
            edge_count,
        },
    ))
}

/// Streams a binary edge file in bounded, fixed-size chunks — the
/// out-of-core converter's input. Unlike [`EdgeList::read_binary`], memory
/// is O(chunk), not O(edges), and the file can be [`EdgeChunks::rewind`]-ed
/// for a second pass.
pub struct EdgeChunks {
    reader: BufReader<File>,
    header: EdgeFileHeader,
    chunk_edges: usize,
    remaining: u64,
    buf: Vec<u8>,
}

impl EdgeChunks {
    /// Opens `path` for chunked streaming, `chunk_edges` tuples per chunk
    /// (clamped to ≥ 1). Header validation matches `read_binary`.
    pub fn open(path: &Path, chunk_edges: usize) -> Result<Self> {
        let (reader, header) = open_validated(path)?;
        let chunk_edges = chunk_edges.max(1);
        Ok(EdgeChunks {
            reader,
            header,
            chunk_edges,
            remaining: header.edge_count,
            buf: vec![0u8; chunk_edges * header.width.edge_bytes()],
        })
    }

    /// The validated file header.
    pub fn header(&self) -> EdgeFileHeader {
        self.header
    }

    pub fn vertex_count(&self) -> u64 {
        self.header.vertex_count
    }

    pub fn edge_count(&self) -> u64 {
        self.header.edge_count
    }

    pub fn kind(&self) -> GraphKind {
        self.header.kind
    }

    pub fn width(&self) -> TupleWidth {
        self.header.width
    }

    /// Tuples per full chunk.
    pub fn chunk_edges(&self) -> usize {
        self.chunk_edges
    }

    /// Edges not yet returned by `next_into` since the last rewind.
    pub fn remaining(&self) -> u64 {
        self.remaining
    }

    /// Reads the next chunk into `out` (cleared first), validating every
    /// endpoint against the header's vertex count. Returns `Ok(false)` at
    /// end of file (with `out` empty). The final chunk may be short.
    pub fn next_into(&mut self, out: &mut Vec<Edge>) -> Result<bool> {
        out.clear();
        if self.remaining == 0 {
            return Ok(false);
        }
        let n = (self.remaining as usize).min(self.chunk_edges);
        let bytes = n * self.header.width.edge_bytes();
        self.reader
            .read_exact(&mut self.buf[..bytes])
            .map_err(|_| GraphError::Format("edge list file truncated".into()))?;
        decode_tuples(&self.buf[..bytes], self.header.width, out);
        let vertex_count = self.header.vertex_count;
        for e in out.iter() {
            let bad = if e.src >= vertex_count {
                Some(e.src)
            } else if e.dst >= vertex_count {
                Some(e.dst)
            } else {
                None
            };
            if let Some(vertex) = bad {
                return Err(GraphError::VertexOutOfRange {
                    vertex,
                    vertex_count,
                });
            }
        }
        self.remaining -= n as u64;
        Ok(true)
    }

    /// Seeks back to the first tuple for another streaming pass.
    pub fn rewind(&mut self) -> Result<()> {
        self.reader.seek(SeekFrom::Start(EDGE_FILE_HEADER_BYTES))?;
        self.remaining = self.header.edge_count;
        Ok(())
    }
}

const MAGIC: &[u8; 4] = b"GSEL";
const READ_CHUNK_EDGES: usize = 1 << 16;

fn width_tag(w: TupleWidth) -> u8 {
    match w {
        TupleWidth::U32 => 0,
        TupleWidth::U64 => 1,
    }
}

fn kind_tag(k: GraphKind) -> u8 {
    match k {
        GraphKind::Directed => 0,
        GraphKind::Undirected => 1,
    }
}

fn decode_tuples(bytes: &[u8], width: TupleWidth, out: &mut Vec<Edge>) {
    match width {
        TupleWidth::U32 => {
            for chunk in bytes.chunks_exact(8) {
                let src = u32::from_le_bytes(chunk[0..4].try_into().unwrap()) as VertexId;
                let dst = u32::from_le_bytes(chunk[4..8].try_into().unwrap()) as VertexId;
                out.push(Edge::new(src, dst));
            }
        }
        TupleWidth::U64 => {
            for chunk in bytes.chunks_exact(16) {
                let src = u64::from_le_bytes(chunk[0..8].try_into().unwrap());
                let dst = u64::from_le_bytes(chunk[8..16].try_into().unwrap());
                out.push(Edge::new(src, dst));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_edges() -> Vec<Edge> {
        // The example graph from Figure 1(a) of the paper.
        vec![
            Edge::new(0, 1),
            Edge::new(0, 3),
            Edge::new(0, 4),
            Edge::new(1, 2),
            Edge::new(1, 4),
            Edge::new(2, 4),
            Edge::new(4, 5),
            Edge::new(5, 6),
            Edge::new(5, 7),
        ]
    }

    #[test]
    fn new_validates_ranges() {
        let err = EdgeList::new(4, GraphKind::Directed, vec![Edge::new(0, 4)]);
        assert!(matches!(
            err,
            Err(GraphError::VertexOutOfRange { vertex: 4, .. })
        ));
        assert!(EdgeList::new(5, GraphKind::Directed, vec![Edge::new(0, 4)]).is_ok());
    }

    #[test]
    fn tuple_width_selection() {
        assert_eq!(TupleWidth::for_vertex_count(100), TupleWidth::U32);
        assert_eq!(TupleWidth::for_vertex_count(1 << 32), TupleWidth::U32);
        assert_eq!(TupleWidth::for_vertex_count((1 << 32) + 1), TupleWidth::U64);
    }

    #[test]
    fn disk_size_matches_width() {
        let el = EdgeList::new(8, GraphKind::Undirected, sample_edges()).unwrap();
        assert_eq!(el.disk_size(TupleWidth::U32), 9 * 8);
        assert_eq!(el.disk_size(TupleWidth::U64), 9 * 16);
    }

    #[test]
    fn canonicalize_only_for_undirected() {
        let mut el = EdgeList::new(8, GraphKind::Directed, vec![Edge::new(3, 1)]).unwrap();
        assert!(el.canonicalize().is_err());
        let mut el = EdgeList::new(8, GraphKind::Undirected, vec![Edge::new(3, 1)]).unwrap();
        el.canonicalize().unwrap();
        assert_eq!(el.edges()[0], Edge::new(1, 3));
    }

    #[test]
    fn dedup_removes_loops_and_mirrors() {
        let edges = vec![
            Edge::new(1, 2),
            Edge::new(2, 1),
            Edge::new(3, 3),
            Edge::new(1, 2),
        ];
        let mut el = EdgeList::new(4, GraphKind::Undirected, edges.clone()).unwrap();
        el.dedup_and_simplify();
        assert_eq!(el.edges(), &[Edge::new(1, 2)]);

        // Directed: mirror edges are distinct, loop still dropped.
        let mut el = EdgeList::new(4, GraphKind::Directed, edges).unwrap();
        el.dedup_and_simplify();
        assert_eq!(el.edges(), &[Edge::new(1, 2), Edge::new(2, 1)]);
    }

    #[test]
    fn reversed_transposes() {
        let el = EdgeList::new(
            4,
            GraphKind::Directed,
            vec![Edge::new(0, 1), Edge::new(2, 3)],
        )
        .unwrap();
        let rev = el.reversed();
        assert_eq!(rev.edges(), &[Edge::new(1, 0), Edge::new(3, 2)]);
        assert_eq!(rev.reversed(), el);
    }

    #[test]
    fn binary_roundtrip_u32_and_u64() {
        let dir = tempfile::tempdir().unwrap();
        for width in [TupleWidth::U32, TupleWidth::U64] {
            let path = dir.path().join(format!("g{}.el", width.edge_bytes()));
            let el = EdgeList::new(8, GraphKind::Undirected, sample_edges()).unwrap();
            el.write_binary(&path, width).unwrap();
            let size = std::fs::metadata(&path).unwrap().len();
            assert_eq!(size, 24 + el.disk_size(width));
            let back = EdgeList::read_binary(&path).unwrap();
            assert_eq!(back, el);
        }
    }

    #[test]
    fn binary_rejects_narrow_width_for_huge_graph() {
        let dir = tempfile::tempdir().unwrap();
        let el = EdgeList::new((1 << 32) + 2, GraphKind::Directed, vec![]).unwrap();
        let err = el.write_binary(&dir.path().join("x.el"), TupleWidth::U32);
        assert!(matches!(err, Err(GraphError::InvalidParameter(_))));
    }

    #[test]
    fn edge_chunks_stream_matches_read_binary() {
        let dir = tempfile::tempdir().unwrap();
        let el = EdgeList::new(8, GraphKind::Undirected, sample_edges()).unwrap();
        for width in [TupleWidth::U32, TupleWidth::U64] {
            let path = dir.path().join(format!("g{}.el", width.edge_bytes()));
            el.write_binary(&path, width).unwrap();
            // Chunk sizes that do (3 | 9) and don't (4 ∤ 9) divide the count.
            for chunk in [1usize, 3, 4, 9, 100] {
                let mut ch = EdgeChunks::open(&path, chunk).unwrap();
                assert_eq!(ch.vertex_count(), 8);
                assert_eq!(ch.edge_count(), 9);
                assert_eq!(ch.kind(), GraphKind::Undirected);
                assert_eq!(ch.width(), width);
                let mut streamed = Vec::new();
                let mut buf = Vec::new();
                while ch.next_into(&mut buf).unwrap() {
                    assert!(buf.len() <= chunk);
                    streamed.extend_from_slice(&buf);
                }
                assert_eq!(streamed, sample_edges());
                assert_eq!(ch.remaining(), 0);
                // A rewind replays the identical stream.
                ch.rewind().unwrap();
                let mut again = Vec::new();
                while ch.next_into(&mut buf).unwrap() {
                    again.extend_from_slice(&buf);
                }
                assert_eq!(again, streamed);
            }
        }
    }

    #[test]
    fn edge_chunks_validate_header_and_ranges() {
        let dir = tempfile::tempdir().unwrap();
        let bad = dir.path().join("bad.el");
        std::fs::write(&bad, b"nope").unwrap();
        assert!(matches!(
            EdgeChunks::open(&bad, 16),
            Err(GraphError::Format(_))
        ));

        // An in-range header over out-of-range tuples fails at next_into.
        let el = EdgeList::new(100, GraphKind::Directed, vec![Edge::new(50, 99)]).unwrap();
        let path = dir.path().join("narrow.el");
        el.write_binary(&path, TupleWidth::U32).unwrap();
        let mut bytes = std::fs::read(&path).unwrap();
        bytes[8..16].copy_from_slice(&40u64.to_le_bytes()); // shrink vertex_count
        std::fs::write(&path, &bytes).unwrap();
        let mut ch = EdgeChunks::open(&path, 16).unwrap();
        let mut buf = Vec::new();
        assert!(matches!(
            ch.next_into(&mut buf),
            Err(GraphError::VertexOutOfRange { vertex: 50, .. })
        ));
    }

    #[test]
    fn read_rejects_corrupt_files() {
        let dir = tempfile::tempdir().unwrap();
        let path = dir.path().join("bad.el");
        std::fs::write(&path, b"nope").unwrap();
        assert!(matches!(
            EdgeList::read_binary(&path),
            Err(GraphError::Format(_))
        ));

        // Valid header but truncated body.
        let el = EdgeList::new(8, GraphKind::Directed, sample_edges()).unwrap();
        let good = dir.path().join("good.el");
        el.write_binary(&good, TupleWidth::U32).unwrap();
        let bytes = std::fs::read(&good).unwrap();
        std::fs::write(&path, &bytes[..bytes.len() - 4]).unwrap();
        assert!(matches!(
            EdgeList::read_binary(&path),
            Err(GraphError::Format(_))
        ));
    }
}
