//! Compressed Sparse Row representation (Figure 1(c) of the paper).
//!
//! `beg_pos[v]..beg_pos[v+1]` indexes into `adj` and yields the neighbors
//! of `v`. The builder is the classic two-pass counting construction the
//! paper benchmarks against tile conversion in Table I.

use crate::edgelist::EdgeList;
use crate::types::{Edge, GraphError, GraphMeta, Result, VertexId};

/// Which adjacency a CSR over a *directed* graph stores.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CsrDirection {
    /// `adj` lists out-neighbors (edges leaving each vertex).
    Out,
    /// `adj` lists in-neighbors (edges entering each vertex).
    In,
}

/// Compressed sparse row adjacency structure.
///
/// For undirected graphs each edge appears in the adjacency of both
/// endpoints (the traditional, symmetric-redundant form whose cost G-Store's
/// tile format eliminates).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Csr {
    meta: GraphMeta,
    direction: CsrDirection,
    beg_pos: Vec<u64>,
    adj: Vec<VertexId>,
}

impl Csr {
    /// Builds a CSR from an edge list.
    ///
    /// * Undirected input: both orientations of every edge are inserted and
    ///   `direction` is ignored (stored as `Out`).
    /// * Directed input: `direction` selects out- or in-adjacency.
    pub fn from_edge_list(el: &EdgeList, direction: CsrDirection) -> Self {
        let n = el.vertex_count() as usize;
        let undirected = !el.kind().is_directed();
        let mut beg_pos = vec![0u64; n + 1];

        // Pass 1: per-vertex degree counts.
        for e in el.edges() {
            let key = match (undirected, direction) {
                (true, _) => e.src,
                (false, CsrDirection::Out) => e.src,
                (false, CsrDirection::In) => e.dst,
            };
            beg_pos[key as usize + 1] += 1;
            if undirected && !e.is_self_loop() {
                beg_pos[e.dst as usize + 1] += 1;
            }
        }
        for i in 0..n {
            beg_pos[i + 1] += beg_pos[i];
        }
        let total = beg_pos[n] as usize;

        // Pass 2: scatter neighbors using a moving cursor per vertex.
        let mut cursor = beg_pos.clone();
        let mut adj = vec![0 as VertexId; total];
        for e in el.edges() {
            match (undirected, direction) {
                (true, _) => {
                    adj[cursor[e.src as usize] as usize] = e.dst;
                    cursor[e.src as usize] += 1;
                    if !e.is_self_loop() {
                        adj[cursor[e.dst as usize] as usize] = e.src;
                        cursor[e.dst as usize] += 1;
                    }
                }
                (false, CsrDirection::Out) => {
                    adj[cursor[e.src as usize] as usize] = e.dst;
                    cursor[e.src as usize] += 1;
                }
                (false, CsrDirection::In) => {
                    adj[cursor[e.dst as usize] as usize] = e.src;
                    cursor[e.dst as usize] += 1;
                }
            }
        }

        Csr {
            meta: el.meta(),
            direction: if undirected {
                CsrDirection::Out
            } else {
                direction
            },
            beg_pos,
            adj,
        }
    }

    /// Reassembles a CSR from raw arrays (e.g. loaded from disk).
    pub fn from_raw_parts(
        meta: GraphMeta,
        direction: CsrDirection,
        beg_pos: Vec<u64>,
        adj: Vec<VertexId>,
    ) -> Result<Self> {
        if beg_pos.len() != meta.vertex_count as usize + 1 {
            return Err(GraphError::Format(format!(
                "beg_pos has {} entries, expected {}",
                beg_pos.len(),
                meta.vertex_count + 1
            )));
        }
        if beg_pos.first() != Some(&0) || *beg_pos.last().unwrap() != adj.len() as u64 {
            return Err(GraphError::Format(
                "beg_pos endpoints inconsistent with adj".into(),
            ));
        }
        if beg_pos.windows(2).any(|w| w[0] > w[1]) {
            return Err(GraphError::Format("beg_pos not monotonic".into()));
        }
        Ok(Csr {
            meta,
            direction,
            beg_pos,
            adj,
        })
    }

    #[inline]
    pub fn meta(&self) -> GraphMeta {
        self.meta
    }

    #[inline]
    pub fn vertex_count(&self) -> u64 {
        self.meta.vertex_count
    }

    /// Number of adjacency entries (2x the edge count for undirected input).
    #[inline]
    pub fn adj_len(&self) -> u64 {
        self.adj.len() as u64
    }

    #[inline]
    pub fn direction(&self) -> CsrDirection {
        self.direction
    }

    #[inline]
    pub fn beg_pos(&self) -> &[u64] {
        &self.beg_pos
    }

    #[inline]
    pub fn adj(&self) -> &[VertexId] {
        &self.adj
    }

    /// Neighbors of `v` in the stored direction.
    #[inline]
    pub fn neighbors(&self, v: VertexId) -> &[VertexId] {
        let lo = self.beg_pos[v as usize] as usize;
        let hi = self.beg_pos[v as usize + 1] as usize;
        &self.adj[lo..hi]
    }

    /// Degree of `v` in the stored direction.
    #[inline]
    pub fn degree(&self, v: VertexId) -> u64 {
        self.beg_pos[v as usize + 1] - self.beg_pos[v as usize]
    }

    /// Serialized size in bytes: `|V|+1` positions plus `|adj|` vertex slots,
    /// at `vertex_bytes` bytes per adjacency entry and 8 bytes per position.
    ///
    /// The paper's Table II sizes CSR as `|E| * vertex_bytes + |V| * 8` per
    /// stored direction (undirected graphs store both directions).
    pub fn disk_size(&self, vertex_bytes: u64) -> u64 {
        self.adj.len() as u64 * vertex_bytes + self.beg_pos.len() as u64 * 8
    }

    /// Reconstructs the edge tuples stored in this CSR (one per adjacency
    /// entry), useful as a test oracle.
    pub fn to_edges(&self) -> Vec<Edge> {
        let mut out = Vec::with_capacity(self.adj.len());
        for v in 0..self.vertex_count() {
            for &u in self.neighbors(v) {
                match self.direction {
                    CsrDirection::Out => out.push(Edge::new(v, u)),
                    CsrDirection::In => out.push(Edge::new(u, v)),
                }
            }
        }
        out
    }
}

/// Convenience: builds both in- and out-CSRs for a directed edge list.
pub fn build_directed_pair(el: &EdgeList) -> Result<(Csr, Csr)> {
    if !el.kind().is_directed() {
        return Err(GraphError::InvalidParameter(
            "build_directed_pair requires a directed graph".into(),
        ));
    }
    Ok((
        Csr::from_edge_list(el, CsrDirection::Out),
        Csr::from_edge_list(el, CsrDirection::In),
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::GraphKind;

    /// The paper's Figure 1 example graph, undirected.
    fn fig1_undirected() -> EdgeList {
        EdgeList::new(
            8,
            GraphKind::Undirected,
            vec![
                Edge::new(0, 1),
                Edge::new(0, 3),
                Edge::new(0, 4),
                Edge::new(1, 2),
                Edge::new(1, 4),
                Edge::new(2, 4),
                Edge::new(4, 5),
                Edge::new(5, 6),
                Edge::new(5, 7),
            ],
        )
        .unwrap()
    }

    #[test]
    fn fig1_csr_matches_paper() {
        // Figure 1(c): beg-pos = [0,3,6,8,9,13,16,17,18] for the undirected
        // form where each edge appears twice.
        let csr = Csr::from_edge_list(&fig1_undirected(), CsrDirection::Out);
        assert_eq!(csr.beg_pos(), &[0, 3, 6, 8, 9, 13, 16, 17, 18]);
        let mut n0 = csr.neighbors(0).to_vec();
        n0.sort_unstable();
        assert_eq!(n0, vec![1, 3, 4]);
        let mut n4 = csr.neighbors(4).to_vec();
        n4.sort_unstable();
        assert_eq!(n4, vec![0, 1, 2, 5]);
        assert_eq!(csr.adj_len(), 18);
    }

    #[test]
    fn directed_out_vs_in() {
        let el = EdgeList::new(
            4,
            GraphKind::Directed,
            vec![Edge::new(0, 1), Edge::new(2, 1), Edge::new(1, 3)],
        )
        .unwrap();
        let (out, inn) = build_directed_pair(&el).unwrap();
        assert_eq!(out.neighbors(0), &[1]);
        assert_eq!(out.neighbors(1), &[3]);
        assert_eq!(out.degree(2), 1);
        let mut in1 = inn.neighbors(1).to_vec();
        in1.sort_unstable();
        assert_eq!(in1, vec![0, 2]);
        assert_eq!(inn.neighbors(3), &[1]);
        assert_eq!(inn.degree(0), 0);
    }

    #[test]
    fn self_loop_appears_once_in_undirected() {
        let el = EdgeList::new(
            2,
            GraphKind::Undirected,
            vec![Edge::new(0, 0), Edge::new(0, 1)],
        )
        .unwrap();
        let csr = Csr::from_edge_list(&el, CsrDirection::Out);
        // Loop contributes one adjacency entry, edge (0,1) contributes two.
        assert_eq!(csr.adj_len(), 3);
        assert_eq!(csr.degree(0), 2);
        assert_eq!(csr.degree(1), 1);
    }

    #[test]
    fn to_edges_roundtrip_directed() {
        let edges = vec![Edge::new(0, 1), Edge::new(2, 1), Edge::new(1, 3)];
        let el = EdgeList::new(4, GraphKind::Directed, edges.clone()).unwrap();
        let csr = Csr::from_edge_list(&el, CsrDirection::Out);
        let mut got = csr.to_edges();
        got.sort_unstable();
        let mut want = edges;
        want.sort_unstable();
        assert_eq!(got, want);

        let csr_in = Csr::from_edge_list(&el, CsrDirection::In);
        let mut got = csr_in.to_edges();
        got.sort_unstable();
        assert_eq!(got, want);
    }

    #[test]
    fn from_raw_parts_validates() {
        let meta = GraphMeta::new(2, 1, GraphKind::Directed);
        assert!(Csr::from_raw_parts(meta, CsrDirection::Out, vec![0, 1, 1], vec![1]).is_ok());
        // Wrong length.
        assert!(Csr::from_raw_parts(meta, CsrDirection::Out, vec![0, 1], vec![1]).is_err());
        // Non-monotonic.
        assert!(Csr::from_raw_parts(meta, CsrDirection::Out, vec![0, 2, 1], vec![1]).is_err());
        // Endpoint mismatch.
        assert!(Csr::from_raw_parts(meta, CsrDirection::Out, vec![0, 1, 2], vec![1]).is_err());
    }

    #[test]
    fn disk_size_formula() {
        let csr = Csr::from_edge_list(&fig1_undirected(), CsrDirection::Out);
        // 18 adjacency entries * 4 bytes + 9 positions * 8 bytes.
        assert_eq!(csr.disk_size(4), 18 * 4 + 9 * 8);
    }

    #[test]
    fn build_directed_pair_rejects_undirected() {
        assert!(build_directed_pair(&fig1_undirected()).is_err());
    }

    #[test]
    fn empty_graph() {
        let el = EdgeList::new(0, GraphKind::Directed, vec![]).unwrap();
        let csr = Csr::from_edge_list(&el, CsrDirection::Out);
        assert_eq!(csr.adj_len(), 0);
        assert_eq!(csr.beg_pos(), &[0]);
    }
}
