//! # gstore
//!
//! A Rust reproduction of **G-Store** (Kumar & Huang, SC'16): a
//! high-performance, space-efficient graph store for semi-external
//! processing of very large graphs on SSD arrays.
//!
//! This facade crate re-exports the whole workspace:
//!
//! * [`graph`] — graph primitives, CSR/edge-list formats, generators,
//!   reference algorithms;
//! * [`tile`] — the paper's contribution: symmetry + smallest-number-of-
//!   bits tile format, physical grouping, on-disk layout;
//! * [`io`] — batched async I/O and the simulated SSD array;
//! * [`scr`] — Slide-Cache-Rewind memory management;
//! * [`core`] — the engine and the BFS / PageRank / WCC algorithms;
//! * [`server`] — the `gstore serve` daemon: concurrent clients over one
//!   engine, sweep queries admission-batched into shared scans;
//! * [`baselines`] — X-Stream-style and FlashGraph-style comparison
//!   engines;
//! * [`cachesim`] — the LLC model used for the cache-behaviour figures.
//!
//! ## Quickstart
//!
//! ```
//! use gstore::prelude::*;
//!
//! // Generate a small Kronecker graph and convert it to tile format.
//! let el = gstore::graph::gen::generate_rmat(
//!     &gstore::graph::gen::RmatParams::kron(10, 8),
//! )
//! .unwrap();
//! let store = TileStore::build(
//!     &el,
//!     &ConversionOptions::new(8).with_group_side(4),
//! )
//! .unwrap();
//!
//! // Run BFS through the full engine (AIO + SCR) over an in-memory
//! // backend.
//! let mut engine = GStoreEngine::builder()
//!     .store(&store)
//!     .scr(ScrConfig::new(64 << 10, 1 << 20).unwrap())
//!     .build()
//!     .unwrap();
//! let mut bfs = Bfs::new(*store.layout().tiling(), 0);
//! let stats = engine.run(&mut bfs, 1000).unwrap();
//! assert!(stats.iterations > 0);
//! assert!(bfs.visited_count() > 1);
//! ```
//!
//! ## Concurrent queries over one scan
//!
//! Several algorithms can share a single disk sweep: admit them into a
//! [`core::QueryBatch`] and the engine drives the union of their I/O
//! frontiers through one scan per iteration.
//!
//! ```
//! use gstore::prelude::*;
//!
//! let el = gstore::graph::gen::generate_rmat(
//!     &gstore::graph::gen::RmatParams::kron(9, 8),
//! )
//! .unwrap();
//! let store = TileStore::build(&el, &ConversionOptions::new(5)).unwrap();
//! let mut engine = GStoreEngine::builder()
//!     .store(&store)
//!     .scr(ScrConfig::new(16 << 10, 256 << 10).unwrap())
//!     .build()
//!     .unwrap();
//! let tiling = *store.layout().tiling();
//! let mut bfs = Bfs::new(tiling, 0);
//! let mut wcc = Wcc::new(tiling);
//! let mut batch = QueryBatch::new();
//! batch.push(&mut bfs).unwrap();
//! batch.push(&mut wcc).unwrap();
//! let stats = engine.run_batch(&mut batch, 1000).unwrap();
//! assert!(stats.all_converged());
//! assert!(stats.read_amortization() >= 1.0);
//! ```

pub mod cli;

pub use gstore_baselines as baselines;
pub use gstore_cachesim as cachesim;
pub use gstore_core as core;
pub use gstore_graph as graph;
pub use gstore_io as io;
pub use gstore_scr as scr;
pub use gstore_server as server;
pub use gstore_tile as tile;

/// The most common imports in one place.
pub mod prelude {
    pub use gstore_core::{
        Algorithm, AsyncBfs, BatchRunStats, Bfs, DegreeCount, EngineBuilder, EngineConfig,
        GStoreEngine, IterationOutcome, KCore, PageRank, PageRankDelta, PointReader, QueryBatch,
        QueryKind, QueryOutcome, QuerySpec, QueryValue, RunStats, SpMV, SweepQuery, TileView, Wcc,
    };
    pub use gstore_graph::{
        Csr, CsrDirection, Edge, EdgeList, GraphKind, GraphMeta, TupleWidth, VertexId,
    };
    pub use gstore_io::{FileBackend, MemBackend, SsdArraySim, StorageBackend};
    pub use gstore_scr::ScrConfig;
    pub use gstore_tile::{
        convert_streaming, ConversionOptions, EdgeEncoding, ScatterMode, StreamingOptions,
        StreamingReport, TileCoord, TilePaths, TileStore, Tiling,
    };
}
