//! The `gstore` command-line tool. See `gstore::cli` for the commands.

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    std::process::exit(gstore::cli::run(&args));
}
