//! The `gstore` command-line tool: generate graphs, convert them to the
//! tile format, inspect stores, and run algorithms — the workflow a
//! downstream user drives without writing Rust.
//!
//! ```text
//! gstore generate kron:18:16 graph.el
//! gstore convert graph.el ./db mygraph --tile-bits 12 --group-side 16
//! gstore info ./db mygraph
//! gstore bfs ./db mygraph --root 0
//! gstore pagerank ./db mygraph --iters 10
//! gstore wcc ./db mygraph
//! gstore batch ./db mygraph bfs:0 pagerank:10 wcc
//! gstore compress ./db mygraph --codec ef
//! ```
//!
//! The [`Flags`] parser and the engine-flag helpers
//! ([`engine_builder_from_flags`]) are shared with the `repro` benchmark
//! harness so both binaries accept the same `--key value` surface.

use crate::graph::gen::{
    generate_powerlaw, generate_random, generate_rmat, PowerLawParams, RandomParams, RmatParams,
};
use crate::graph::{text, CompactDegrees, EdgeList, GraphError, GraphKind, Result, TupleWidth};
use crate::prelude::*;
use crate::tile::sizing::human_bytes;
use crate::tile::stats::index_stats;
use crate::tile::{
    migrate_legacy_store, recode_store_files, Codec, CodecReport, CompressedPaths, TileFile,
};
use std::path::{Path, PathBuf};

/// Parsed command-line flags (everything after positional arguments).
#[derive(Debug, Default, Clone)]
pub struct Flags {
    map: std::collections::HashMap<String, String>,
}

impl Flags {
    /// Parses `--key value` and bare `--switch` flags from `args`,
    /// returning the positional arguments separately.
    pub fn parse(args: &[String]) -> Result<(Vec<String>, Flags)> {
        let mut pos = Vec::new();
        let mut map = std::collections::HashMap::new();
        let mut i = 0;
        while i < args.len() {
            let a = &args[i];
            if let Some(key) = a.strip_prefix("--") {
                let next_is_value = args
                    .get(i + 1)
                    .map(|v| !v.starts_with("--"))
                    .unwrap_or(false);
                if next_is_value {
                    map.insert(key.to_string(), args[i + 1].clone());
                    i += 2;
                } else {
                    map.insert(key.to_string(), String::new());
                    i += 1;
                }
            } else {
                pos.push(a.clone());
                i += 1;
            }
        }
        Ok((pos, Flags { map }))
    }

    pub fn has(&self, key: &str) -> bool {
        self.map.contains_key(key)
    }

    pub fn get<T: std::str::FromStr>(&self, key: &str, default: T) -> Result<T> {
        match self.map.get(key) {
            None => Ok(default),
            Some(v) => v.parse().map_err(|_| {
                GraphError::InvalidParameter(format!("invalid value {v:?} for --{key}"))
            }),
        }
    }
}

/// Parses a generator spec like `kron:18:16` or `twitter:512`.
pub fn parse_generator(spec: &str, directed: bool, seed: u64) -> Result<EdgeList> {
    let parts: Vec<&str> = spec.split(':').collect();
    let num = |s: &str| -> Result<u64> {
        s.parse()
            .map_err(|_| GraphError::InvalidParameter(format!("bad number {s:?} in {spec:?}")))
    };
    let kind = if directed {
        GraphKind::Directed
    } else {
        GraphKind::Undirected
    };
    match parts.as_slice() {
        ["kron", scale, ef] => generate_rmat(
            &RmatParams::kron(num(scale)? as u32, num(ef)?)
                .with_kind(kind)
                .with_seed(seed),
        ),
        ["random", scale, ef] => generate_random(
            &RandomParams::scaled(num(scale)? as u32, num(ef)?)
                .with_kind(kind)
                .with_seed(seed),
        ),
        ["twitter", div] => {
            generate_powerlaw(&PowerLawParams::twitter_like(num(div)?).with_seed(seed))
        }
        ["friendster", div] => {
            generate_powerlaw(&PowerLawParams::friendster_like(num(div)?).with_seed(seed))
        }
        ["subdomain", div] => {
            generate_powerlaw(&PowerLawParams::subdomain_like(num(div)?).with_seed(seed))
        }
        _ => Err(GraphError::InvalidParameter(format!(
            "unknown generator {spec:?}; try kron:<scale>:<ef>, random:<scale>:<ef>, \
             twitter:<div>, friendster:<div>, subdomain:<div>"
        ))),
    }
}

fn load_edges(path: &Path, flags: &Flags) -> Result<EdgeList> {
    let kind = if flags.has("directed") {
        GraphKind::Directed
    } else {
        GraphKind::Undirected
    };
    if flags.has("text") || path.extension().is_some_and(|e| e == "txt") {
        text::read_text(path, kind, None)
    } else {
        EdgeList::read_binary(path)
    }
}

/// Parses `--<key>` as a size in `unit`-byte units and returns the byte
/// total. Zero and sizes whose byte total overflows `u64` are rejected:
/// a zero budget can only dead-lock or divide-by-zero downstream, and a
/// wrapped shift would silently turn `--memory-mb 18446744073709551615`
/// into a tiny budget.
fn size_flag(flags: &Flags, key: &str, default_units: u64, unit: u64) -> Result<u64> {
    let units: u64 = flags.get(key, default_units)?;
    if units == 0 {
        return Err(GraphError::InvalidParameter(format!(
            "--{key} must be at least 1"
        )));
    }
    units.checked_mul(unit).ok_or_else(|| {
        GraphError::InvalidParameter(format!("--{key} {units} overflows the byte budget"))
    })
}

/// Builds an [`EngineBuilder`] from the shared engine flags
/// (`--segment-kb`, `--memory-mb`, `--io-workers`, `--io-backend`,
/// `--sqpoll`, `--cache-mb`, `--direct`, `--metrics-json`). No source is
/// set — callers add `.paths(..)` / `.store(..)` / `.backend(..)` for
/// their graph. Used by both the `gstore` commands and the `repro`
/// harness.
pub fn engine_builder_from_flags(flags: &Flags) -> Result<EngineBuilder> {
    let segment = size_flag(flags, "segment-kb", 4096, 1 << 10)?;
    let total = size_flag(flags, "memory-mb", 256, 1 << 20)?;
    let io_workers: usize = flags.get("io-workers", 4usize)?;
    if io_workers == 0 {
        return Err(GraphError::InvalidParameter(
            "--io-workers must be at least 1".into(),
        ));
    }
    let backend_spec: String = flags.get("io-backend", String::from("auto"))?;
    let io_backend = crate::io::IoBackend::parse(&backend_spec).ok_or_else(|| {
        GraphError::InvalidParameter(format!(
            "--io-backend must be auto, workers or uring (got {backend_spec:?})"
        ))
    })?;
    let scr = ScrConfig::new(segment, total.max(2 * segment))?;
    Ok(GStoreEngine::builder()
        .scr(scr)
        .io_workers(io_workers)
        .io_backend(io_backend)
        .io_sqpoll(flags.has("sqpoll"))
        .direct_io(flags.has("direct"))
        .point_read_cache_bytes(size_flag(flags, "cache-mb", 64, 1 << 20)?)
        .metrics(flags.has("metrics-json")))
}

fn engine_for(dir: &Path, name: &str, flags: &Flags) -> Result<(GStoreEngine, Tiling)> {
    let paths = TilePaths::new(dir, name);
    let engine = engine_builder_from_flags(flags)?.paths(&paths).build()?;
    let tiling = *engine.index().layout.tiling();
    Ok((engine, tiling))
}

/// Honours `--metrics-json <path>`: serializes the engine's flight
/// recorder (see docs/METRICS.md for the schema) after a run.
fn write_metrics(engine: &GStoreEngine, flags: &Flags) -> Result<()> {
    let path: String = flags.get("metrics-json", String::new())?;
    if !flags.has("metrics-json") {
        return Ok(());
    }
    if path.is_empty() {
        return Err(GraphError::InvalidParameter(
            "--metrics-json needs an output path".into(),
        ));
    }
    let m = engine.metrics().expect("metrics enabled by engine_for");
    std::fs::write(&path, m.to_json())?;
    println!("metrics written to {path}");
    Ok(())
}

/// `gstore generate <spec> <out>`: writes a binary edge list.
pub fn cmd_generate(args: &[String]) -> Result<()> {
    let (pos, flags) = Flags::parse(args)?;
    let [spec, out] = pos.as_slice() else {
        return Err(GraphError::InvalidParameter(
            "usage: generate <spec> <out.el> [--directed] [--seed N] [--text]".into(),
        ));
    };
    let el = parse_generator(spec, flags.has("directed"), flags.get("seed", 42u64)?)?;
    let out = PathBuf::from(out);
    if flags.has("text") {
        text::write_text(&el, &out)?;
    } else {
        el.write_binary(&out, TupleWidth::for_vertex_count(el.vertex_count()))?;
    }
    println!(
        "wrote {:?}: {} vertices, {} edges ({:?})",
        out,
        el.vertex_count(),
        el.edge_count(),
        el.kind()
    );
    Ok(())
}

/// `gstore convert <input> <dir> <name>`: edge list → tile store.
pub fn cmd_convert(args: &[String]) -> Result<()> {
    let (pos, flags) = Flags::parse(args)?;
    let [input, dir, name] = pos.as_slice() else {
        return Err(GraphError::InvalidParameter(
            "usage: convert <input> <dir> <name> [--text] [--directed] \
             [--tile-bits N] [--group-side N] [--no-symmetry] [--compress] \
             [--codec varint|gamma|zeta|ef] [--streaming] [--mem-budget MB] [--direct]"
                .into(),
        ));
    };
    if flags.has("codec") && !flags.has("compress") {
        return Err(GraphError::InvalidParameter(
            "--codec only makes sense with --compress".into(),
        ));
    }
    let mut opts = ConversionOptions::new(flags.get("tile-bits", 12u32)?)
        .with_group_side(flags.get("group-side", 16u32)?);
    if flags.has("no-symmetry") {
        opts = opts.without_symmetry();
    }
    let dir = Path::new(dir);
    let paths;
    if flags.has("streaming") {
        if flags.has("text") {
            return Err(GraphError::InvalidParameter(
                "--streaming reads the binary edge format only (drop --text)".into(),
            ));
        }
        let sopts = StreamingOptions::new(opts)
            .with_mem_budget_mb(size_flag(&flags, "mem-budget", 64, 1 << 20)? >> 20)
            .with_direct_io(flags.has("direct"));
        let report = convert_streaming(Path::new(input), dir, name, &sopts)?;
        paths = report.paths.clone();
        println!(
            "converted (streaming): {} tiles, {} data in {} chunks of {} edges \
             ({} pwrites, {} staged flushes)",
            report.tile_count,
            human_bytes(report.data_bytes),
            report.chunks,
            report.chunk_edges,
            report.write.pwrites,
            report.write.flushes,
        );
    } else {
        let el = load_edges(Path::new(input), &flags)?;
        let store = TileStore::build(&el, &opts)?;
        std::fs::create_dir_all(dir)?;
        paths = crate::tile::write_store(&store, dir, name)?;
        println!(
            "converted: {} tiles in {} groups, {} data + {} index",
            store.tile_count(),
            store.layout().groups().len(),
            human_bytes(store.data_bytes()),
            human_bytes(store.index_bytes()),
        );
    }
    if flags.has("compress") {
        let codec = Codec::parse(&flags.get("codec", "varint".to_string())?)?;
        let coded_name = format!("{name}c");
        let (cpaths, report) = recode_store_files(&paths, dir, &coded_name, codec)?;
        print_codec_report(&report, &cpaths.tiles);
    }
    println!("  {:?}\n  {:?}", paths.tiles, paths.start);
    Ok(())
}

/// One-line summary of a coded store a command just wrote.
fn print_codec_report(report: &CodecReport, tiles: &Path) {
    println!(
        "  coded ({}): {} on disk, {:.2} bytes/edge ({:.2}x vs raw SNB) at {:?}",
        report.codec.name(),
        human_bytes(report.disk_bytes),
        report.bytes_per_edge(),
        report.ratio(),
        tiles
    );
}

/// `gstore info <dir> <name>`: store geometry and occupancy.
pub fn cmd_info(args: &[String]) -> Result<()> {
    let (pos, _flags) = Flags::parse(args)?;
    let [dir, name] = pos.as_slice() else {
        return Err(GraphError::InvalidParameter(
            "usage: info <dir> <name>".into(),
        ));
    };
    let paths = TilePaths::new(Path::new(dir), name);
    let cpaths = CompressedPaths::new(Path::new(dir), name);
    if !paths.tiles.exists() && cpaths.ctiles.exists() {
        return Err(GraphError::InvalidParameter(format!(
            "{:?} is a legacy .ctiles/.cstart store (write-only, no query path); \
             run `gstore compress {dir} {name} --migrate` to repackage it",
            cpaths.ctiles
        )));
    }
    // Header + start-edge index only: the tile data never becomes resident,
    // so `info` stays O(tile_count) even on stores far larger than memory.
    let tf = TileFile::open(&paths)?;
    {
        let index = tf.index();
        let tiling = index.layout.tiling();
        println!(
            "graph    : {} vertices, {} stored edges",
            tiling.vertex_count(),
            index.edge_count()
        );
        println!(
            "kind     : {:?} ({})",
            tiling.kind(),
            if tiling.symmetric() {
                "upper triangle stored"
            } else {
                "full grid"
            }
        );
        println!(
            "tiling   : 2^{} vertices/tile side, {}x{} grid, {} tiles",
            tiling.tile_bits(),
            tiling.partitions(),
            tiling.partitions(),
            index.tile_count()
        );
        println!(
            "grouping : q={} ({} physical groups)",
            index.layout.group_side(),
            index.layout.groups().len()
        );
        println!(
            "size     : {} tile data, {} start-edge index",
            human_bytes(index.data_bytes()),
            human_bytes((index.tile_count() + 1) * 8)
        );
        // Codec accounting comes from the index alone: disk bytes are the
        // last compressed offset, logical bytes are edges x SNB width.
        let stored = index.edge_count();
        let bpe = |bytes: u64| {
            if stored == 0 {
                0.0
            } else {
                bytes as f64 / stored as f64
            }
        };
        if index.is_coded() {
            println!(
                "codec    : {} — {:.2} bytes/edge on disk vs {:.2} logical ({:.2}x saving)",
                index.codec.name(),
                bpe(index.data_bytes()),
                bpe(index.logical_bytes()),
                index.compression_ratio()
            );
        } else {
            println!(
                "codec    : raw (uncompressed {:?}, {:.2} bytes/edge)",
                index.encoding,
                bpe(index.data_bytes())
            );
        }
        let on_disk =
            std::fs::metadata(&paths.tiles)?.len() + std::fs::metadata(&paths.start)?.len();
        println!(
            "on disk  : {} total, {:.2} bytes/edge",
            human_bytes(on_disk),
            bpe(on_disk)
        );
        let stats = index_stats(index);
        println!(
            "tiles    : {:.1}% empty, {:.1}% under 1k edges, largest {} edges",
            stats.empty_fraction * 100.0,
            stats.fraction_below(1000) * 100.0,
            stats.max_count
        );
    }
    if cpaths.ctiles.exists() {
        println!(
            "note: legacy compressed copy at {:?}; \
             run `gstore compress {dir} {name} --migrate` to repackage it",
            cpaths.ctiles
        );
    }
    Ok(())
}

/// `gstore bfs <dir> <name> --root R [--async]`.
pub fn cmd_bfs(args: &[String]) -> Result<()> {
    let (pos, flags) = Flags::parse(args)?;
    let [dir, name] = pos.as_slice() else {
        return Err(GraphError::InvalidParameter(
            "usage: bfs <dir> <name> [--root R] [--async] [--segment-kb N] [--memory-mb N]".into(),
        ));
    };
    let (mut engine, tiling) = engine_for(Path::new(dir), name, &flags)?;
    let root: u64 = flags.get("root", 0u64)?;
    if root >= tiling.vertex_count() {
        return Err(GraphError::VertexOutOfRange {
            vertex: root,
            vertex_count: tiling.vertex_count(),
        });
    }
    let (visited, max_depth, stats) = if flags.has("async") {
        let mut bfs = AsyncBfs::new(tiling, root);
        let stats = engine.run(&mut bfs, u32::MAX)?;
        let depths = bfs.depths();
        let max = depths
            .iter()
            .filter(|&&d| d != u32::MAX)
            .max()
            .copied()
            .unwrap_or(0);
        (bfs.visited_count(), max, stats)
    } else {
        let mut bfs = Bfs::new(tiling, root);
        let stats = engine.run(&mut bfs, u32::MAX)?;
        let depths = bfs.depths();
        let max = depths
            .iter()
            .filter(|&&d| d != u32::MAX)
            .max()
            .copied()
            .unwrap_or(0);
        (bfs.visited_count(), max, stats)
    };
    println!(
        "bfs from {root}: visited {visited} vertices, max depth {max_depth}, \
         {} iterations, {} read, {:.1} MTEPS",
        stats.iterations,
        human_bytes(stats.bytes_read),
        stats.mteps()
    );
    write_metrics(&engine, &flags)
}

/// `gstore pagerank <dir> <name> [--iters N] [--damping D] [--delta]`.
pub fn cmd_pagerank(args: &[String]) -> Result<()> {
    let (pos, flags) = Flags::parse(args)?;
    let [dir, name] = pos.as_slice() else {
        return Err(GraphError::InvalidParameter(
            "usage: pagerank <dir> <name> [--iters N] [--damping D] [--delta] [--top K]".into(),
        ));
    };
    let (mut engine, tiling) = engine_for(Path::new(dir), name, &flags)?;
    let iters: u32 = flags.get("iters", 20u32)?;
    let damping: f64 = flags.get("damping", 0.85f64)?;
    let top: usize = flags.get("top", 5usize)?;

    let mut dc = DegreeCount::new(tiling);
    engine.run(&mut dc, 1)?;
    engine.clear_cache();
    // Scope any --metrics-json output to the PageRank run itself.
    engine.reset_metrics();
    let degrees = dc.degrees();

    let (ranks, stats) = if flags.has("delta") {
        let mut pr = PageRankDelta::new(tiling, degrees, damping, 1e-9);
        let stats = engine.run(&mut pr, iters)?;
        (pr.ranks().to_vec(), stats)
    } else {
        let mut pr = PageRank::new(tiling, degrees, damping).with_iterations(iters);
        let stats = engine.run(&mut pr, iters)?;
        (pr.ranks().to_vec(), stats)
    };
    println!(
        "pagerank: {} iterations, {} read from disk",
        stats.iterations,
        human_bytes(stats.bytes_read)
    );
    let mut ranked: Vec<(usize, f64)> = ranks.iter().copied().enumerate().collect();
    ranked.sort_by(|a, b| b.1.total_cmp(&a.1));
    for (v, r) in ranked.iter().take(top) {
        println!("  vertex {v:>10}  rank {r:.8}");
    }
    write_metrics(&engine, &flags)
}

/// `gstore wcc <dir> <name>`.
pub fn cmd_wcc(args: &[String]) -> Result<()> {
    let (pos, flags) = Flags::parse(args)?;
    let [dir, name] = pos.as_slice() else {
        return Err(GraphError::InvalidParameter(
            "usage: wcc <dir> <name>".into(),
        ));
    };
    let (mut engine, tiling) = engine_for(Path::new(dir), name, &flags)?;
    let mut wcc = Wcc::new(tiling);
    let stats = engine.run(&mut wcc, u32::MAX)?;
    println!(
        "wcc: {} components in {} iterations, {} read",
        wcc.component_count(),
        stats.iterations,
        human_bytes(stats.bytes_read)
    );
    write_metrics(&engine, &flags)
}

/// `gstore scc <dir> <name>` (directed stores only; in-memory driver).
pub fn cmd_scc(args: &[String]) -> Result<()> {
    let (pos, _flags) = Flags::parse(args)?;
    let [dir, name] = pos.as_slice() else {
        return Err(GraphError::InvalidParameter(
            "usage: scc <dir> <name>".into(),
        ));
    };
    let paths = TilePaths::new(Path::new(dir), name);
    let store = TileFile::open(&paths)?.load_all()?;
    if store.layout().tiling().symmetric() {
        return Err(GraphError::InvalidParameter(
            "scc requires a directed store (convert with --directed)".into(),
        ));
    }
    let labels = crate::core::algorithms::scc::scc_labels(&store, u32::MAX);
    let count = crate::core::algorithms::scc::component_count(&labels);
    println!("scc: {count} strongly connected components");
    Ok(())
}

/// `gstore kcore <dir> <name> --k K`: k-core membership count.
pub fn cmd_kcore(args: &[String]) -> Result<()> {
    let (pos, flags) = Flags::parse(args)?;
    let [dir, name] = pos.as_slice() else {
        return Err(GraphError::InvalidParameter(
            "usage: kcore <dir> <name> [--k K]".into(),
        ));
    };
    let (mut engine, tiling) = engine_for(Path::new(dir), name, &flags)?;
    let k: u64 = flags.get("k", 2u64)?;
    let mut kc = crate::core::KCore::new(tiling, k);
    let stats = engine.run(&mut kc, u32::MAX)?;
    println!(
        "{k}-core: {} of {} vertices survive ({} peeling rounds, {} read)",
        kc.core_members().len(),
        tiling.vertex_count(),
        stats.iterations,
        human_bytes(stats.bytes_read)
    );
    write_metrics(&engine, &flags)
}

/// `gstore batch <dir> <name> <spec>...`: runs several queries
/// concurrently over one shared scan per iteration. Specs parse through
/// the typed [`QuerySpec`] grammar shared with `gstore query`, the wire
/// protocol, and the `repro` harness.
pub fn cmd_batch(args: &[String]) -> Result<()> {
    let (pos, flags) = Flags::parse(args)?;
    let [dir, name, specs @ ..] = pos.as_slice() else {
        return Err(GraphError::InvalidParameter(
            "usage: batch <dir> <name> <spec>... \
             (specs: bfs[:root], pagerank[:iters], wcc, kcore[:k], degrees)"
                .into(),
        ));
    };
    if specs.is_empty() {
        return Err(GraphError::InvalidParameter(
            "batch needs at least one query spec".into(),
        ));
    }
    let parsed: Vec<QuerySpec> = specs.iter().map(|s| s.parse()).collect::<Result<_>>()?;
    let (mut engine, tiling) = engine_for(Path::new(dir), name, &flags)?;

    // PageRank needs out-degrees: one extra sweep before the batch.
    let degrees = if parsed.iter().any(|q| q.needs_degrees()) {
        let mut dc = DegreeCount::new(tiling);
        engine.run(&mut dc, 1)?;
        engine.clear_cache();
        engine.reset_metrics();
        Some(dc.degrees())
    } else {
        None
    };

    let mut algs: Vec<Box<dyn Algorithm>> = parsed
        .iter()
        .map(|q| q.to_algorithm(tiling, degrees.as_deref()))
        .collect::<Result<_>>()?;
    let mut batch = QueryBatch::new();
    for alg in &mut algs {
        batch.push(alg.as_mut())?;
    }
    let stats = engine.run_batch(&mut batch, u32::MAX)?;

    for (spec, q) in specs.iter().zip(&stats.per_query) {
        println!(
            "  {spec:<16} {:>3} iterations, {} read, {} tiles ({} shared-scan), {}",
            q.stats.iterations,
            human_bytes(q.stats.bytes_read),
            q.stats.tiles_processed,
            q.stats.tiles_from_cache,
            if q.converged { "converged" } else { "cut off" },
        );
    }
    println!(
        "batch: {} queries in {} sweeps, {} read from disk \
         ({:.2}x amortization, {} tiles served to >1 query)",
        stats.per_query.len(),
        stats.sweeps,
        human_bytes(stats.aggregate.bytes_read),
        stats.read_amortization(),
        stats.tiles_shared,
    );
    write_metrics(&engine, &flags)
}

/// Runs one `query` point-read spec against a [`PointReader`] and prints
/// a one-line result. Parsing and execution go through the typed
/// [`QuerySpec`] surface; sweep specs are rejected with a pointer to
/// `batch`.
fn run_point_query(reader: &PointReader, spec: &str, seed: u64) -> Result<()> {
    let q: QuerySpec = spec.parse()?;
    if q.kind() != QueryKind::Point {
        return Err(GraphError::InvalidParameter(format!(
            "{q} is a sweep query; run it through `gstore batch`"
        )));
    }
    let value = crate::core::spec::run_point(reader, &q, seed)?;
    println!("  {spec:<16} {}", value.summary());
    Ok(())
}

/// `gstore query <dir> <name> <spec>...`: OLTP-style point reads served
/// from individual tiles — no full sweep. Specs: `neighbors:v`,
/// `degree:v`, `khop:v:k`, `walk:v:len`.
pub fn cmd_query(args: &[String]) -> Result<()> {
    let (pos, flags) = Flags::parse(args)?;
    let [dir, name, specs @ ..] = pos.as_slice() else {
        return Err(GraphError::InvalidParameter(
            "usage: query <dir> <name> <spec>... \
             (specs: neighbors:v, degree:v, khop:v:k, walk:v:len)"
                .into(),
        ));
    };
    if specs.is_empty() {
        return Err(GraphError::InvalidParameter(
            "query needs at least one point-read spec".into(),
        ));
    }
    let (engine, _tiling) = engine_for(Path::new(dir), name, &flags)?;
    let reader = engine.point_reader();
    let seed: u64 = flags.get("seed", 42u64)?;
    for spec in specs {
        run_point_query(&reader, spec, seed)?;
    }
    let cache = reader.cache_stats();
    println!(
        "query: {} point reads, hot-tile cache {} resident ({} inserted, {} rejected)",
        specs.len(),
        reader.cache_resident(),
        cache.inserted,
        cache.rejected,
    );
    write_metrics(&engine, &flags)
}

/// `gstore serve <dir> <name> [--port P] [--max-batch N] [--queue N]`:
/// runs the shared-scan query daemon over one engine until killed.
/// Clients speak the length-prefixed QuerySpec protocol (docs/API.md);
/// `gstore client` is the bundled driver.
pub fn cmd_serve(args: &[String]) -> Result<()> {
    let (pos, flags) = Flags::parse(args)?;
    let [dir, name] = pos.as_slice() else {
        return Err(GraphError::InvalidParameter(
            "usage: serve <dir> <name> [--port P] [--max-batch N] [--queue N] \
             [--max-iters N] [--seed N]"
                .into(),
        ));
    };
    let port: u16 = flags.get("port", 7421u16)?;
    let opts = crate::server::ServeOptions {
        addr: format!("127.0.0.1:{port}"),
        max_batch: flags.get("max-batch", QueryBatch::MAX_QUERIES)?,
        queue_capacity: flags.get("queue", 0usize)?,
        max_iters: flags.get("max-iters", 10_000u32)?,
        walk_seed: flags.get("seed", 42u64)?,
    };
    // The daemon snapshots metrics at shutdown, so serving always records.
    let engine = engine_builder_from_flags(&flags)?
        .metrics(true)
        .paths(&TilePaths::new(Path::new(dir), name))
        .build()?;
    let handle = crate::server::serve(engine, opts)?;
    println!(
        "serving {name} on {} (max batch {}, point reads answered inline); \
         stop with ctrl-c",
        handle.local_addr(),
        flags.get("max-batch", QueryBatch::MAX_QUERIES)?,
    );
    // Foreground daemon: park until killed. Tests drive the library API
    // (gstore_server::serve) directly, where shutdown() is available.
    loop {
        std::thread::park();
    }
}

/// `gstore client <addr> <spec>...`: sends each query spec to a running
/// daemon and prints the replies — the serve protocol's test driver.
pub fn cmd_client(args: &[String]) -> Result<()> {
    let (pos, flags) = Flags::parse(args)?;
    let [addr, specs @ ..] = pos.as_slice() else {
        return Err(GraphError::InvalidParameter(
            "usage: client <host:port> <spec>... [--raw] [--retries N]".into(),
        ));
    };
    if specs.is_empty() {
        return Err(GraphError::InvalidParameter(
            "client needs at least one query spec".into(),
        ));
    }
    let retries: u32 = flags.get("retries", 200u32)?;
    let mut client = crate::server::Client::connect(addr).map_err(GraphError::Io)?;
    let mut failures = 0u32;
    for spec in specs {
        let reply = client
            .query_retrying(spec, retries)
            .map_err(GraphError::Io)?;
        match reply {
            crate::server::Reply::Value(value) => {
                if flags.has("raw") {
                    println!("  {spec:<16} {}", value.encode());
                } else {
                    println!("  {spec:<16} {}", value.summary());
                }
            }
            crate::server::Reply::Error { code, message } => {
                failures += 1;
                println!("  {spec:<16} ERR {code}: {message}");
            }
            crate::server::Reply::Busy => {
                failures += 1;
                println!("  {spec:<16} BUSY (queue full after {retries} retries)");
            }
        }
    }
    if failures > 0 {
        return Err(GraphError::InvalidParameter(format!(
            "{failures} of {} queries did not return a value",
            specs.len()
        )));
    }
    Ok(())
}

/// `gstore compress <dir> <name> [--codec C] [--out NAME] [--migrate]`:
/// re-encodes a store with a bit-level tile codec (default `varint`),
/// writing a first-class coded `.tiles`/`.start` pair that every query
/// path consumes. `--migrate` repackages a legacy `.ctiles`/`.cstart`
/// pair instead (a data-file copy — no recompression).
pub fn cmd_compress(args: &[String]) -> Result<()> {
    let (pos, flags) = Flags::parse(args)?;
    let [dir, name] = pos.as_slice() else {
        return Err(GraphError::InvalidParameter(
            "usage: compress <dir> <name> [--codec varint|gamma|zeta|ef] \
             [--out NAME] [--migrate]"
                .into(),
        ));
    };
    let out: String = flags.get("out", format!("{name}c"))?;
    let dir = Path::new(dir);
    let (cpaths, report) = if flags.has("migrate") {
        if flags.has("codec") {
            return Err(GraphError::InvalidParameter(
                "--migrate keeps the legacy varint streams; drop --codec".into(),
            ));
        }
        migrate_legacy_store(&CompressedPaths::new(dir, name), dir, &out)?
    } else {
        let codec = Codec::parse(&flags.get("codec", "varint".to_string())?)?;
        recode_store_files(&TilePaths::new(dir, name), dir, &out, codec)?
    };
    println!(
        "coded {} edges as {}:",
        report.edge_count,
        report.codec.name()
    );
    print_codec_report(&report, &cpaths.tiles);
    Ok(())
}

/// `gstore degrees <dir> <name>`: degree statistics via a tile sweep.
pub fn cmd_degrees(args: &[String]) -> Result<()> {
    let (pos, flags) = Flags::parse(args)?;
    let [dir, name] = pos.as_slice() else {
        return Err(GraphError::InvalidParameter(
            "usage: degrees <dir> <name>".into(),
        ));
    };
    let (mut engine, tiling) = engine_for(Path::new(dir), name, &flags)?;
    let mut dc = DegreeCount::new(tiling);
    engine.run(&mut dc, 1)?;
    let degrees = dc.degrees();
    let dist = crate::graph::stats::DegreeDistribution::from_degrees(&degrees);
    println!(
        "degrees: max {}, mean {:.2}, skew {:.0}x, {:.1}% isolated",
        dist.max_degree,
        dist.mean_degree,
        dist.skew(),
        dist.isolated_fraction() * 100.0
    );
    println!(
        "p50 {} / p90 {} / p99 {}",
        dist.percentile(&degrees, 0.5),
        dist.percentile(&degrees, 0.9),
        dist.percentile(&degrees, 0.99)
    );
    for (label, count) in dist.rows() {
        if count > 0 {
            println!("  degree {label:>12}: {count}");
        }
    }
    match CompactDegrees::from_degrees(&degrees) {
        Ok(c) => println!(
            "compact encoding: {} vs {} flat u32 ({} hub overflow entries)",
            human_bytes(c.size_bytes()),
            human_bytes(c.flat_size_bytes(4)),
            c.overflow_count()
        ),
        Err(e) => println!("compact encoding inapplicable: {e}"),
    }
    write_metrics(&engine, &flags)?;
    Ok(())
}

const USAGE: &str = "usage: gstore <command> ...
commands:
  generate <spec> <out>        make a graph (kron:18:16, random:20:8,
                               twitter:512, friendster:512, subdomain:512)
  convert  <input> <dir> <n>   edge list (binary or --text) -> tile store
                               (--compress [--codec C] also writes a coded
                               <n>c store)
  info     <dir> <name>        store geometry, sizes, occupancy, codec
                               accounting (bytes/edge, compression ratio)
  bfs      <dir> <name>        breadth-first search (--root R, --async)
  pagerank <dir> <name>        PageRank (--iters N, --delta, --top K)
  wcc      <dir> <name>        weakly connected components
  scc      <dir> <name>        strongly connected components (directed)
  kcore    <dir> <name>        k-core decomposition (--k K)
  degrees  <dir> <name>        degree statistics + compact encoding
  batch    <dir> <name> <spec>...
                               run several queries over one shared scan
                               (specs: bfs[:root], pagerank[:iters], wcc,
                               kcore[:k], degrees)
  query    <dir> <name> <spec>...
                               point reads from individual tiles, no sweep
                               (specs: neighbors:v, degree:v, khop:v:k,
                               walk:v:len; --cache-mb N, --seed N)
  serve    <dir> <name>        run the shared-scan query daemon
                               (--port P default 7421, --max-batch N,
                               --queue N, --max-iters N, --seed N; sweep
                               queries batch into shared scans, point
                               reads answered inline)
  client   <host:port> <spec>...
                               send query specs to a running daemon
                               (--raw wire-encoded replies, --retries N
                               on BUSY; any batch/query spec works)
  compress <dir> <name>        re-encode with a bit-level tile codec
                               (--codec varint|gamma|zeta|ef, --out NAME,
                               --migrate for legacy .ctiles stores)
engine flags (bfs/pagerank/wcc/kcore/degrees/batch/query):
  --segment-kb N   streaming segment size (default 4096)
  --memory-mb N    total memory budget (default 256)
  --io-workers N   AIO worker threads (default 4; workers backend only)
  --io-backend B   I/O engine: auto | workers | uring (default auto:
                   probe io_uring, fall back to the worker pool)
  --sqpoll         ask io_uring for kernel submission polling (SQPOLL);
                   silently degraded when the host refuses
  --cache-mb N     hot-tile cache for point reads (default 64)
  --direct         sector-aligned O_DIRECT-style reads
  --metrics-json P write flight-recorder metrics (per-iteration phase
                   timings, I/O counters, cache stats) to P as JSON";

/// Entry point used by the `gstore` binary; returns the exit code.
pub fn run(args: &[String]) -> i32 {
    let Some((cmd, rest)) = args.split_first() else {
        eprintln!("{USAGE}");
        return 2;
    };
    let result = match cmd.as_str() {
        "generate" => cmd_generate(rest),
        "convert" => cmd_convert(rest),
        "info" => cmd_info(rest),
        "bfs" => cmd_bfs(rest),
        "pagerank" => cmd_pagerank(rest),
        "wcc" => cmd_wcc(rest),
        "scc" => cmd_scc(rest),
        "kcore" => cmd_kcore(rest),
        "degrees" => cmd_degrees(rest),
        "batch" => cmd_batch(rest),
        "query" => cmd_query(rest),
        "serve" => cmd_serve(rest),
        "client" => cmd_client(rest),
        "compress" => cmd_compress(rest),
        "help" | "--help" | "-h" => {
            println!("{USAGE}");
            Ok(())
        }
        other => Err(GraphError::InvalidParameter(format!(
            "unknown command {other:?}"
        ))),
    };
    match result {
        Ok(()) => 0,
        Err(e) => {
            eprintln!("gstore: {e}");
            2
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn s(v: &[&str]) -> Vec<String> {
        v.iter().map(|x| x.to_string()).collect()
    }

    #[test]
    fn flags_parse_values_and_switches() {
        let (pos, flags) =
            Flags::parse(&s(&["a", "--x", "5", "b", "--flag", "--y", "2.5"])).unwrap();
        assert_eq!(pos, s(&["a", "b"]));
        assert_eq!(flags.get("x", 0u32).unwrap(), 5);
        assert!(flags.has("flag"));
        assert_eq!(flags.get("y", 0.0f64).unwrap(), 2.5);
        assert_eq!(flags.get("missing", 7u8).unwrap(), 7);
        assert!(flags.get::<u32>("y", 0).is_err());
    }

    #[test]
    fn generator_specs() {
        let el = parse_generator("kron:8:4", false, 1).unwrap();
        assert_eq!(el.vertex_count(), 256);
        assert_eq!(el.kind(), GraphKind::Undirected);
        let el = parse_generator("random:8:4", true, 1).unwrap();
        assert_eq!(el.kind(), GraphKind::Directed);
        assert!(parse_generator("twitter:100000", false, 1).is_ok());
        assert!(parse_generator("bogus:1", false, 1).is_err());
        assert!(parse_generator("kron:x:4", false, 1).is_err());
    }

    #[test]
    fn full_cli_workflow() {
        let dir = tempfile::tempdir().unwrap();
        let el_path = dir.path().join("g.el");
        let db = dir.path().join("db");
        let dbs = db.to_str().unwrap().to_string();

        assert_eq!(
            run(&s(&["generate", "kron:10:8", el_path.to_str().unwrap()])),
            0
        );
        assert_eq!(
            run(&s(&[
                "convert",
                el_path.to_str().unwrap(),
                &dbs,
                "g",
                "--tile-bits",
                "6",
                "--group-side",
                "4",
                "--compress",
            ])),
            0
        );
        assert_eq!(run(&s(&["info", &dbs, "g"])), 0);
        assert_eq!(run(&s(&["bfs", &dbs, "g", "--root", "0"])), 0);
        assert_eq!(run(&s(&["bfs", &dbs, "g", "--root", "0", "--async"])), 0);
        let metrics_path = dir.path().join("bfs-metrics.json");
        assert_eq!(
            run(&s(&[
                "bfs",
                &dbs,
                "g",
                "--root",
                "0",
                "--metrics-json",
                metrics_path.to_str().unwrap(),
            ])),
            0
        );
        let metrics = std::fs::read_to_string(&metrics_path).unwrap();
        assert!(metrics.contains("\"iterations\""));
        assert!(metrics.contains("\"bytes_read\""));
        assert!(metrics.contains("\"phase_split\""));
        assert_eq!(run(&s(&["pagerank", &dbs, "g", "--iters", "5"])), 0);
        assert_eq!(
            run(&s(&["pagerank", &dbs, "g", "--delta", "--iters", "50"])),
            0
        );
        assert_eq!(run(&s(&["wcc", &dbs, "g"])), 0);
        assert_eq!(run(&s(&["kcore", &dbs, "g", "--k", "3"])), 0);
        assert_eq!(run(&s(&["degrees", &dbs, "g"])), 0);
        let mq_path = dir.path().join("mq-metrics.json");
        assert_eq!(
            run(&s(&[
                "batch",
                &dbs,
                "g",
                "bfs:0",
                "bfs:1",
                "pagerank:5",
                "wcc",
                "kcore:3",
                "degrees",
                "--metrics-json",
                mq_path.to_str().unwrap(),
            ])),
            0
        );
        let mq = std::fs::read_to_string(&mq_path).unwrap();
        assert!(mq.contains("\"query_batch\""));
        assert_eq!(run(&s(&["batch", &dbs, "g"])), 2);
        assert_eq!(run(&s(&["batch", &dbs, "g", "bogus:1"])), 2);
        assert_eq!(run(&s(&["batch", &dbs, "g", "kcore:x"])), 2);

        // --compress wrote a coded sibling store; it is a first-class
        // citizen of every command.
        assert!(db.join("gc.tiles").exists());
        assert_eq!(run(&s(&["info", &dbs, "gc"])), 0);
        assert_eq!(run(&s(&["bfs", &dbs, "gc", "--root", "0"])), 0);
        assert_eq!(run(&s(&["batch", &dbs, "gc", "bfs:0", "wcc"])), 0);

        // Explicit re-encode with another codec, plus point reads on it.
        assert_eq!(
            run(&s(&[
                "compress", &dbs, "g", "--codec", "ef", "--out", "gef"
            ])),
            0
        );
        assert_eq!(
            run(&s(&["query", &dbs, "gef", "neighbors:0", "degree:0"])),
            0
        );
        // Bad codec spellings and raw targets are usage errors.
        assert_eq!(run(&s(&["compress", &dbs, "g", "--codec", "bogus"])), 2);
        assert_eq!(run(&s(&["compress", &dbs, "g", "--codec", "raw"])), 2);
    }

    #[test]
    fn query_workflow_point_reads() {
        let dir = tempfile::tempdir().unwrap();
        let el_path = dir.path().join("g.el");
        let db = dir.path().join("db");
        let dbs = db.to_str().unwrap().to_string();
        assert_eq!(
            run(&s(&["generate", "kron:9:8", el_path.to_str().unwrap()])),
            0
        );
        assert_eq!(
            run(&s(&[
                "convert",
                el_path.to_str().unwrap(),
                &dbs,
                "g",
                "--tile-bits",
                "5",
                "--group-side",
                "4",
            ])),
            0
        );
        assert_eq!(
            run(&s(&[
                "query",
                &dbs,
                "g",
                "neighbors:0",
                "degree:0",
                "khop:0:2",
                "walk:0:16",
                "--cache-mb",
                "8",
            ])),
            0
        );
        let metrics_path = dir.path().join("query-metrics.json");
        assert_eq!(
            run(&s(&[
                "query",
                &dbs,
                "g",
                "degree:1",
                "degree:1",
                "--metrics-json",
                metrics_path.to_str().unwrap(),
            ])),
            0
        );
        let metrics = std::fs::read_to_string(&metrics_path).unwrap();
        assert!(metrics.contains("\"pointread\""));
        assert!(metrics.contains("\"lookups\""));
        // Usage and spec errors exit nonzero.
        assert_eq!(run(&s(&["query", &dbs, "g"])), 2);
        assert_eq!(run(&s(&["query", &dbs, "g", "bogus:0"])), 2);
        assert_eq!(run(&s(&["query", &dbs, "g", "khop:0:x"])), 2);
        assert_eq!(run(&s(&["query", &dbs, "g", "degree:999999"])), 2);
    }

    #[test]
    fn serve_and_client_workflow() {
        let dir = tempfile::tempdir().unwrap();
        let el_path = dir.path().join("g.el");
        let db = dir.path().join("db");
        let dbs = db.to_str().unwrap().to_string();
        assert_eq!(
            run(&s(&["generate", "kron:9:6", el_path.to_str().unwrap()])),
            0
        );
        assert_eq!(
            run(&s(&[
                "convert",
                el_path.to_str().unwrap(),
                &dbs,
                "g",
                "--tile-bits",
                "5",
                "--group-side",
                "4",
            ])),
            0
        );

        // `cmd_serve` parks its thread forever, so the test starts the
        // daemon through the library API on an ephemeral port and drives
        // it with the real `gstore client` subcommand.
        let engine = GStoreEngine::builder()
            .scr(ScrConfig::new(64 << 10, 1 << 20).unwrap())
            .metrics(true)
            .paths(&TilePaths::new(&db, "g"))
            .build()
            .unwrap();
        let handle = crate::server::serve(engine, crate::server::ServeOptions::default()).unwrap();
        let addr = handle.local_addr().to_string();

        // Mixed sweep + point specs over one connection, both render modes.
        assert_eq!(
            run(&s(&[
                "client",
                &addr,
                "bfs:0",
                "wcc",
                "degree:0",
                "neighbors:1"
            ])),
            0
        );
        assert_eq!(
            run(&s(&["client", &addr, "pagerank:5", "khop:0:2", "--raw"])),
            0
        );
        // Typed errors surface as a nonzero exit; the daemon survives and
        // keeps answering afterwards.
        assert_eq!(run(&s(&["client", &addr, "bogus:0"])), 2);
        assert_eq!(run(&s(&["client", &addr, "degree:999999"])), 2);
        assert_eq!(run(&s(&["client", &addr, "degrees"])), 0);
        // Usage errors.
        assert_eq!(run(&s(&["client", &addr])), 2);
        assert_eq!(run(&s(&["serve"])), 2);
        assert_eq!(run(&s(&["client", "127.0.0.1:1", "wcc"])), 2); // no daemon

        let engine = handle.shutdown();
        assert_eq!(engine.aio_in_flight(), 0);
        assert_eq!(engine.buffer_pool_stats().outstanding, 0);
    }

    #[test]
    fn info_on_zero_edge_store_prints_finite_bytes_per_edge() {
        // Regression: a store converted from an edge-free list must not
        // report NaN/inf bytes/edge — `info` pins the ratio to 0.00.
        let dir = tempfile::tempdir().unwrap();
        let el_path = dir.path().join("empty.el");
        let el = EdgeList::new(16, GraphKind::Undirected, Vec::new()).unwrap();
        el.write_binary(&el_path, TupleWidth::for_vertex_count(16))
            .unwrap();
        let db = dir.path().join("db");
        let dbs = db.to_str().unwrap().to_string();
        assert_eq!(
            run(&s(&[
                "convert",
                el_path.to_str().unwrap(),
                &dbs,
                "e",
                "--tile-bits",
                "3",
            ])),
            0
        );
        assert_eq!(run(&s(&["info", &dbs, "e"])), 0);
        // Point reads on the empty store answer (empty) rather than erroring.
        assert_eq!(run(&s(&["query", &dbs, "e", "neighbors:0", "degree:3"])), 0);
    }

    #[test]
    fn numeric_engine_flags_reject_zero_and_overflow() {
        let f = |kv: &[&str]| Flags::parse(&s(kv)).unwrap().1;
        let is_invalid =
            |r: Result<EngineBuilder>| matches!(r, Err(GraphError::InvalidParameter(_)));
        assert!(engine_builder_from_flags(&f(&[])).is_ok());
        for key in ["--segment-kb", "--memory-mb", "--io-workers", "--cache-mb"] {
            assert!(
                is_invalid(engine_builder_from_flags(&f(&[key, "0"]))),
                "{key} 0 must be rejected"
            );
        }
        let huge = u64::MAX.to_string();
        for key in ["--segment-kb", "--memory-mb", "--cache-mb"] {
            assert!(
                is_invalid(engine_builder_from_flags(&f(&[key, &huge]))),
                "{key} u64::MAX must be rejected, not silently wrapped"
            );
        }
        // A negative count fails the unsigned parse with the typed error.
        assert!(is_invalid(engine_builder_from_flags(&f(&[
            "--io-workers",
            "-1"
        ]))));
    }

    #[test]
    fn io_backend_flag_parses_and_rejects_bogus_values() {
        let f = |kv: &[&str]| Flags::parse(&s(kv)).unwrap().1;
        for spec in ["auto", "workers", "uring"] {
            assert!(
                engine_builder_from_flags(&f(&["--io-backend", spec])).is_ok(),
                "--io-backend {spec} must parse"
            );
        }
        assert!(matches!(
            engine_builder_from_flags(&f(&["--io-backend", "epoll"])),
            Err(GraphError::InvalidParameter(_))
        ));
        // --sqpoll is a bare switch; it composes with any backend choice.
        assert!(engine_builder_from_flags(&f(&["--sqpoll"])).is_ok());
    }

    #[test]
    fn convert_mem_budget_rejects_zero_and_overflow() {
        let dir = tempfile::tempdir().unwrap();
        let el_path = dir.path().join("g.el");
        let els = el_path.to_str().unwrap().to_string();
        let db = dir.path().join("db");
        let dbs = db.to_str().unwrap().to_string();
        assert_eq!(run(&s(&["generate", "kron:8:4", &els])), 0);
        for bad in ["0", "18446744073709551615"] {
            assert_eq!(
                run(&s(&[
                    "convert",
                    &els,
                    &dbs,
                    "g",
                    "--streaming",
                    "--mem-budget",
                    bad,
                ])),
                2,
                "--mem-budget {bad} must be a usage error"
            );
        }
    }

    #[test]
    fn streaming_convert_workflow() {
        let dir = tempfile::tempdir().unwrap();
        let el_path = dir.path().join("g.el");
        let els = el_path.to_str().unwrap().to_string();
        let db = dir.path().join("db");
        let dbs = db.to_str().unwrap().to_string();
        assert_eq!(run(&s(&["generate", "kron:10:8", &els])), 0);
        assert_eq!(
            run(&s(&[
                "convert",
                &els,
                &dbs,
                "g",
                "--streaming",
                "--mem-budget",
                "1",
                "--tile-bits",
                "6",
                "--group-side",
                "4",
            ])),
            0
        );
        // The streamed store is a first-class citizen: info and queries
        // work off the files it wrote.
        assert_eq!(run(&s(&["info", &dbs, "g"])), 0);
        assert_eq!(run(&s(&["bfs", &dbs, "g", "--root", "0"])), 0);

        // Streamed output matches the in-memory conversion byte for byte.
        let db2 = dir.path().join("db2");
        assert_eq!(
            run(&s(&[
                "convert",
                &els,
                db2.to_str().unwrap(),
                "g",
                "--tile-bits",
                "6",
                "--group-side",
                "4",
            ])),
            0
        );
        for f in ["g.tiles", "g.start"] {
            assert_eq!(
                std::fs::read(db.join(f)).unwrap(),
                std::fs::read(db2.join(f)).unwrap(),
                "{f} differs between streaming and in-memory conversion"
            );
        }

        // Unsupported flag combinations are usage errors.
        assert_eq!(
            run(&s(&["convert", &els, &dbs, "x", "--streaming", "--text"])),
            2
        );
        assert_eq!(run(&s(&["convert", &els, &dbs, "x", "--codec", "ef"])), 2);

        // --streaming composes with --compress: the raw pair lands first,
        // then a recode pass writes the coded sibling.
        assert_eq!(
            run(&s(&[
                "convert",
                &els,
                &dbs,
                "x",
                "--streaming",
                "--compress",
                "--codec",
                "zeta",
                "--tile-bits",
                "6",
            ])),
            0
        );
        assert!(db.join("xc.tiles").exists());
        assert_eq!(run(&s(&["wcc", &dbs, "xc"])), 0);
    }

    #[test]
    fn legacy_compressed_stores_point_at_migration() {
        let dir = tempfile::tempdir().unwrap();
        let el = parse_generator("kron:9:8", false, 7).unwrap();
        let store = TileStore::build(&el, &ConversionOptions::new(5).with_group_side(4)).unwrap();
        // A legacy-only store (just .ctiles/.cstart): info refuses with a
        // message naming the migration command.
        crate::tile::write_compressed(&store, dir.path(), "old").unwrap();
        let dbs = dir.path().to_str().unwrap().to_string();
        assert_eq!(run(&s(&["info", &dbs, "old"])), 2);
        assert_eq!(run(&s(&["bfs", &dbs, "old", "--root", "0"])), 2);
        // --migrate repackages it into the codec-tagged format, after
        // which every query path works.
        assert_eq!(
            run(&s(&["compress", &dbs, "old", "--migrate", "--out", "new"])),
            0
        );
        assert_eq!(run(&s(&["info", &dbs, "new"])), 0);
        assert_eq!(run(&s(&["bfs", &dbs, "new", "--root", "0"])), 0);
        assert_eq!(run(&s(&["query", &dbs, "new", "degree:0"])), 0);
        // --migrate --codec is contradictory.
        assert_eq!(
            run(&s(&["compress", &dbs, "old", "--migrate", "--codec", "ef"])),
            2
        );
    }

    #[test]
    fn directed_workflow_with_scc() {
        let dir = tempfile::tempdir().unwrap();
        let el_path = dir.path().join("d.el");
        let db = dir.path().join("db");
        let dbs = db.to_str().unwrap().to_string();
        assert_eq!(
            run(&s(&[
                "generate",
                "kron:8:4",
                el_path.to_str().unwrap(),
                "--directed"
            ])),
            0
        );
        assert_eq!(
            run(&s(&[
                "convert",
                el_path.to_str().unwrap(),
                &dbs,
                "d",
                "--directed",
                "--tile-bits",
                "5",
            ])),
            0
        );
        assert_eq!(run(&s(&["scc", &dbs, "d"])), 0);
    }

    #[test]
    fn text_roundtrip_workflow() {
        let dir = tempfile::tempdir().unwrap();
        let txt = dir.path().join("g.txt");
        std::fs::write(&txt, "# demo\n0 1\n1 2\n2 0\n").unwrap();
        let db = dir.path().join("db");
        let dbs = db.to_str().unwrap().to_string();
        assert_eq!(
            run(&s(&[
                "convert",
                txt.to_str().unwrap(),
                &dbs,
                "t",
                "--text",
                "--tile-bits",
                "2"
            ])),
            0
        );
        assert_eq!(run(&s(&["wcc", &dbs, "t"])), 0);
    }

    #[test]
    fn errors_produce_nonzero_exit() {
        assert_eq!(run(&s(&["nonsense"])), 2);
        assert_eq!(run(&s(&["bfs"])), 2);
        assert_eq!(run(&s(&[])), 2);
        assert_eq!(run(&s(&["info", "/nonexistent", "g"])), 2);
    }
}
