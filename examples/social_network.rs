//! Social-network analytics on a Twitter-shaped graph — the paper's
//! motivating scenario (recommendation systems, social networks).
//!
//! Generates a power-law directed graph with Twitter-like skew, then uses
//! the G-Store engine to (a) rank influencers with PageRank, (b) find
//! weakly-connected communities, and (c) measure how far the network
//! reaches from its top influencer with BFS.
//!
//! Run with: `cargo run --release --example social_network`

use gstore::graph::gen::{generate_powerlaw, PowerLawParams};
use gstore::prelude::*;

fn main() -> gstore::graph::Result<()> {
    // Twitter at 1/2000 scale: ~26k users, ~1M follow edges.
    let params = PowerLawParams::twitter_like(2000);
    let el = generate_powerlaw(&params)?;
    println!(
        "social graph: {} users, {} follow edges (directed, power-law)",
        el.vertex_count(),
        el.edge_count()
    );

    let store = TileStore::build(&el, &ConversionOptions::new(10).with_group_side(8))?;
    let tiling = *store.layout().tiling();
    let mut engine = GStoreEngine::builder()
        .store(&store)
        .scr(ScrConfig::new(128 << 10, 8 << 20)?)
        .build()?;

    // -- PageRank: who are the influencers? --
    // Degrees come from the store itself via a one-sweep DegreeCount.
    let mut dc = DegreeCount::new(tiling);
    engine.run(&mut dc, 1)?;
    let degrees = dc.degrees();
    let mut pr = PageRank::new(tiling, degrees.clone(), 0.85).with_tolerance(1e-9);
    let stats = engine.run(&mut pr, 100)?;
    println!("\nPageRank converged in {} iterations", stats.iterations);
    let mut ranked: Vec<(usize, f64)> = pr.ranks().iter().copied().enumerate().collect();
    ranked.sort_by(|a, b| b.1.total_cmp(&a.1));
    println!("top 5 influencers (user, rank, followers->):");
    for (user, rank) in ranked.iter().take(5) {
        println!(
            "  user {user:>8}  rank {rank:.6}  out-degree {}",
            degrees[*user]
        );
    }

    // -- WCC: community structure. --
    let mut wcc = Wcc::new(tiling);
    engine.run(&mut wcc, 1000)?;
    let labels = wcc.labels();
    let mut sizes = std::collections::HashMap::new();
    for &l in &labels {
        *sizes.entry(l).or_insert(0u64) += 1;
    }
    let mut sizes: Vec<u64> = sizes.into_values().collect();
    sizes.sort_unstable_by(|a, b| b.cmp(a));
    println!(
        "\n{} weakly-connected components; largest holds {:.1}% of users",
        wcc.component_count(),
        100.0 * sizes[0] as f64 / el.vertex_count() as f64
    );

    // -- BFS: reachability from the top influencer. --
    let root = ranked[0].0 as u64;
    let mut bfs = Bfs::new(tiling, root);
    let stats = engine.run(&mut bfs, 1000)?;
    let depths = bfs.depths();
    let reached = bfs.visited_count();
    let max_depth = depths
        .iter()
        .filter(|&&d| d != gstore::core::UNREACHED)
        .max()
        .copied()
        .unwrap_or(0);
    println!(
        "\nBFS from user {root}: reaches {reached} users ({:.1}%) within {max_depth} hops \
         in {} iterations",
        100.0 * reached as f64 / el.vertex_count() as f64,
        stats.iterations
    );
    Ok(())
}
