//! Semi-external processing on a simulated SSD array — a scaled version
//! of the paper's headline scenario (trillion-edge graphs on 8 SSDs,
//! Table III / Figure 15).
//!
//! Builds a Kron-20-16 graph (1M vertices, 16M edges), serves its tile
//! data from a simulated RAID-0 array, and reports modelled runtimes and
//! MTEPS for BFS / PageRank / WCC across 1..8 devices.
//!
//! Run with: `cargo run --release --example ssd_array_scaling`

use gstore::io::{ArrayConfig, SsdArraySim};
use gstore::prelude::*;
use gstore::tile::sizing::human_bytes;
use gstore::tile::TileIndex;
use std::sync::Arc;
use std::time::Instant;

fn main() -> gstore::graph::Result<()> {
    let el = gstore::graph::gen::generate_rmat(&gstore::graph::gen::RmatParams::kron(20, 16))?;
    let store = TileStore::build(&el, &ConversionOptions::new(12).with_group_side(16))?;
    println!(
        "Kron-20-16: {} vertices, {} edges, {} tile data on the array",
        el.vertex_count(),
        el.edge_count(),
        human_bytes(store.data_bytes())
    );

    // Memory budget: a quarter of the graph — truly semi-external.
    let segment = 512 << 10;
    let builder = GStoreEngine::builder().scr(ScrConfig::new(
        segment,
        store.data_bytes() / 4 + 2 * segment,
    )?);

    let mut dc = DegreeCount::new(*store.layout().tiling());
    builder.clone().store(&store).build()?.run(&mut dc, 1)?;
    let degrees = dc.degrees();

    println!("\ndevices  algorithm  modelled   io time    compute    metric");
    for devices in [1usize, 2, 4, 8] {
        for alg in ["bfs", "pagerank", "wcc"] {
            let sim = Arc::new(SsdArraySim::new(
                Arc::new(MemBackend::new(store.data().to_vec())),
                ArrayConfig::new(devices),
            ));
            let index = TileIndex::raw(
                store.layout().clone(),
                store.encoding(),
                store.start_edge().to_vec(),
            );
            let backend: Arc<dyn StorageBackend> = sim.clone();
            let mut engine = builder.clone().backend(index, backend).build()?;
            let t0 = Instant::now();
            let (stats, metric) = match alg {
                "bfs" => {
                    let mut bfs = Bfs::new(*store.layout().tiling(), 0);
                    let stats = engine.run(&mut bfs, 1000)?;
                    let m = format!("{} visited", bfs.visited_count());
                    (stats, m)
                }
                "pagerank" => {
                    let mut pr = PageRank::new(*store.layout().tiling(), degrees.clone(), 0.85)
                        .with_iterations(5);
                    let stats = engine.run(&mut pr, 5)?;
                    (stats, "5 iterations".to_string())
                }
                _ => {
                    let mut wcc = Wcc::new(*store.layout().tiling());
                    let stats = engine.run(&mut wcc, 1000)?;
                    let m = format!("{} components", wcc.component_count());
                    (stats, m)
                }
            };
            let wall = t0.elapsed().as_secs_f64();
            let io = sim.stats().elapsed;
            let runtime = wall.max(io);
            println!(
                "{devices:>7}  {alg:<9}  {:>8.3}s  {:>8.3}s  {:>8.3}s  {} ({:.0} MTEPS)",
                runtime,
                io,
                wall,
                metric,
                stats.edges_processed as f64 / 1e6 / runtime
            );
        }
    }
    println!("\n(the paper's full-scale run: Kron-31-256, 1 trillion edges, 8 real SSDs,");
    println!(" BFS in 43 min at 432 MTEPS — same pipeline, bigger machine)");
    Ok(())
}
