//! The paper's future-work features working together: a graph stored in
//! the *compressed* tile format on *tiered* SSD+HDD storage.
//!
//! Flow: generate a web-shaped graph → convert → write both the plain and
//! compressed stores → compare sizes against traditional formats → run
//! WCC over a tiered backend where only the hottest physical groups live
//! on the (simulated) SSD tier.
//!
//! Run with: `cargo run --release --example compressed_tiered`

use gstore::graph::gen::{generate_powerlaw, PowerLawParams};
use gstore::io::{hdd_array, ArrayConfig, SsdArraySim, TieredBackend};
use gstore::prelude::*;
use gstore::tile::sizing::human_bytes;
use gstore::tile::{write_compressed, CompressedTileFile, TileIndex};
use std::sync::Arc;
use std::time::Instant;

fn main() -> gstore::graph::Result<()> {
    // A web-graph-shaped workload (Subdomain at 1/2000 scale).
    let el = generate_powerlaw(&PowerLawParams::subdomain_like(2000))?;
    println!(
        "web graph: {} vertices, {} edges",
        el.vertex_count(),
        el.edge_count()
    );

    let store = TileStore::build(&el, &ConversionOptions::new(10).with_group_side(8))?;
    let dir = tempfile::tempdir().map_err(gstore::graph::GraphError::Io)?;

    // -- Storage ladder: edge list -> CSR -> SNB tiles -> compressed. --
    let el_bytes = el.edge_count() * 8;
    let csr_bytes = el.edge_count() * 2 * 4; // both directions, u32 adj
    let (cpaths, report) = write_compressed(&store, dir.path(), "web")?;
    println!("\nstorage ladder (same graph):");
    println!("  edge list (8B tuples)   {}", human_bytes(el_bytes));
    println!("  CSR (both directions)   {}", human_bytes(csr_bytes));
    println!(
        "  G-Store SNB tiles       {}",
        human_bytes(store.data_bytes())
    );
    println!(
        "  + delta compression     {}  ({:.2}x on top of SNB, {:.1}x vs CSR)",
        human_bytes(report.compressed_bytes),
        report.ratio(),
        csr_bytes as f64 / report.compressed_bytes as f64
    );

    // Decompress and verify losslessness.
    let restored = CompressedTileFile::open(&cpaths)?.load_all()?;
    assert_eq!(restored.edge_count(), store.edge_count());
    println!(
        "  (round-trip verified: {} edges intact)",
        restored.edge_count()
    );

    // -- Tiered run: hottest 50% of bytes on SSD, the rest on HDD. --
    let boundary = store.data_bytes() / 2;
    let ssd = Arc::new(SsdArraySim::new(
        Arc::new(MemBackend::new(store.data().to_vec())),
        ArrayConfig::new(4),
    ));
    let hdd = Arc::new(SsdArraySim::new(
        Arc::new(MemBackend::new(store.data().to_vec())),
        hdd_array(2),
    ));
    let tiered: Arc<dyn StorageBackend> = Arc::new(
        TieredBackend::new(ssd.clone(), hdd.clone(), boundary)
            .map_err(gstore::graph::GraphError::Io)?,
    );
    let index = TileIndex::raw(
        store.layout().clone(),
        store.encoding(),
        store.start_edge().to_vec(),
    );
    let mut engine = GStoreEngine::builder()
        .backend(index, tiered)
        .scr(ScrConfig::new(256 << 10, store.data_bytes() / 2)?)
        .build()?;
    let mut wcc = Wcc::new(*store.layout().tiling());
    let t0 = Instant::now();
    let stats = engine.run(&mut wcc, 1000)?;
    let wall = t0.elapsed().as_secs_f64();

    println!("\nWCC on tiered storage (50% SSD / 50% HDD):");
    println!(
        "  {} components in {} iterations ({} read)",
        wcc.component_count(),
        stats.iterations,
        human_bytes(stats.bytes_read)
    );
    println!(
        "  SSD tier served {}  in {:.3}s | HDD tier served {}  in {:.3}s | compute {:.3}s",
        human_bytes(ssd.stats().total_bytes),
        ssd.stats().elapsed,
        human_bytes(hdd.stats().total_bytes),
        hdd.stats().elapsed,
        wall
    );
    println!("\n(paper §VIII-IX: both compression and tiered storage are its named future work)");
    Ok(())
}
