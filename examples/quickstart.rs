//! Quickstart: generate a graph, convert it to G-Store's tile format,
//! persist it, and run BFS through the full engine (batched async I/O +
//! slide-cache-rewind memory management).
//!
//! Run with: `cargo run --release --example quickstart`

use gstore::graph::gen::{generate_rmat, RmatParams};
use gstore::prelude::*;
use gstore::tile::sizing::human_bytes;

fn main() -> gstore::graph::Result<()> {
    // 1. A Kronecker graph: 2^16 vertices, ~1M undirected edges.
    let el = generate_rmat(&RmatParams::kron(16, 16))?;
    println!(
        "generated Kron-16-16: {} vertices, {} edges",
        el.vertex_count(),
        el.edge_count()
    );

    // 2. Convert to the tile format: 2^10-vertex tiles grouped 8x8,
    //    smallest-number-of-bits encoding (4 bytes/edge).
    let opts = ConversionOptions::new(10).with_group_side(8);
    let store = TileStore::build(&el, &opts)?;
    println!(
        "tile store: {} tiles in {} physical groups, {} on disk \
         (edge list would be {})",
        store.tile_count(),
        store.layout().groups().len(),
        human_bytes(store.data_bytes()),
        human_bytes(el.disk_size(TupleWidth::U32) * 2), // both orientations
    );

    // 3. Persist the two files (tile data + start-edge index) and open an
    //    engine over them.
    let dir = tempfile::tempdir().map_err(gstore::graph::GraphError::Io)?;
    let paths = gstore::tile::write_store(&store, dir.path(), "kron16")?;
    println!("wrote {:?} and {:?}", paths.tiles, paths.start);

    // 4. Run BFS with a deliberately small memory budget: two 64 KB
    //    streaming segments and a 1 MB cache pool.
    let mut engine = GStoreEngine::builder()
        .paths(&paths)
        .scr(ScrConfig::new(64 << 10, (1 << 20) + (128 << 10))?)
        .build()?;
    let mut bfs = Bfs::new(*store.layout().tiling(), 0);
    let stats = engine.run(&mut bfs, 1000)?;

    println!(
        "BFS from vertex 0: visited {} vertices in {} iterations",
        bfs.visited_count(),
        stats.iterations
    );
    println!(
        "  {:.1} MTEPS | {} read from disk | {} tiles from cache ({:.0}% hit)",
        stats.mteps(),
        human_bytes(stats.bytes_read),
        stats.tiles_from_cache,
        stats.cache_hit_fraction() * 100.0
    );
    Ok(())
}
