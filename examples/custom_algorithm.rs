//! Writing your own algorithm against the engine's `Algorithm` trait:
//! HITS (Kleinberg's hubs and authorities), which is not shipped with the
//! library.
//!
//! HITS is a natural fit for the tile format: the authority update pulls
//! along in-edges and the hub update along out-edges, and a tile `[i, j]`
//! carries *both* roles of each stored edge — the same one-copy-serves-
//! both-directions property the paper highlights for its algorithms.
//!
//! Run with: `cargo run --release --example custom_algorithm`

use gstore::core::atomics::{atomic_f64_vec, AtomicF64};
use gstore::graph::gen::{generate_powerlaw, PowerLawParams};
use gstore::prelude::*;

/// HITS with per-iteration L2 normalisation.
struct Hits {
    hub: Vec<f64>,
    authority: Vec<f64>,
    next_hub: Vec<AtomicF64>,
    next_auth: Vec<AtomicF64>,
    tolerance: f64,
    delta: f64,
}

impl Hits {
    fn new(tiling: Tiling, tolerance: f64) -> Self {
        let n = tiling.vertex_count() as usize;
        let init = 1.0 / (n.max(1) as f64).sqrt();
        Hits {
            hub: vec![init; n],
            authority: vec![init; n],
            next_hub: atomic_f64_vec(n, 0.0),
            next_auth: atomic_f64_vec(n, 0.0),
            tolerance,
            delta: f64::INFINITY,
        }
    }

    fn top(&self, scores: &[f64], k: usize) -> Vec<(usize, f64)> {
        let mut v: Vec<(usize, f64)> = scores.iter().copied().enumerate().collect();
        v.sort_by(|a, b| b.1.total_cmp(&a.1));
        v.truncate(k);
        v
    }
}

impl Algorithm for Hits {
    fn name(&self) -> &'static str {
        "hits"
    }

    fn begin_iteration(&mut self, _iteration: u32) {
        for c in self.next_hub.iter().chain(&self.next_auth) {
            c.store(0.0);
        }
    }

    fn process_tile(&self, view: &TileView<'_>) {
        // Each stored edge (u -> v) contributes hub[u] to authority[v]
        // and authority[v] to hub[u]; symmetric stores carry both
        // orientations in one tuple.
        for e in view.edges() {
            self.next_auth[e.dst as usize].fetch_add(self.hub[e.src as usize]);
            self.next_hub[e.src as usize].fetch_add(self.authority[e.dst as usize]);
            if view.symmetric && e.src != e.dst {
                self.next_auth[e.src as usize].fetch_add(self.hub[e.dst as usize]);
                self.next_hub[e.dst as usize].fetch_add(self.authority[e.src as usize]);
            }
        }
    }

    fn end_iteration(&mut self, _iteration: u32) -> IterationOutcome {
        let normalize = |next: &[AtomicF64], out: &mut [f64]| -> f64 {
            let norm: f64 = next.iter().map(|c| c.load() * c.load()).sum::<f64>().sqrt();
            let mut delta = 0.0;
            if norm > 0.0 {
                for (o, c) in out.iter_mut().zip(next) {
                    let v = c.load() / norm;
                    delta += (v - *o).abs();
                    *o = v;
                }
            }
            delta
        };
        let da = normalize(&self.next_auth, &mut self.authority);
        let dh = normalize(&self.next_hub, &mut self.hub);
        self.delta = da + dh;
        if self.delta <= self.tolerance {
            IterationOutcome::Converged
        } else {
            IterationOutcome::Continue
        }
    }
}

fn main() -> gstore::graph::Result<()> {
    // A directed web-like graph: hubs (pages with many outlinks) and
    // authorities (pages many hubs point to) are distinct roles.
    let el = generate_powerlaw(&PowerLawParams::subdomain_like(4000))?;
    println!(
        "web graph: {} pages, {} links",
        el.vertex_count(),
        el.edge_count()
    );
    let store = TileStore::build(&el, &ConversionOptions::new(9).with_group_side(8))?;
    let mut engine = GStoreEngine::builder()
        .store(&store)
        .scr(ScrConfig::new(128 << 10, 8 << 20)?)
        .build()?;

    let mut hits = Hits::new(*store.layout().tiling(), 1e-8);
    let stats = engine.run(&mut hits, 200)?;
    println!(
        "HITS converged in {} iterations (final delta {:.2e}, {} read)\n",
        stats.iterations,
        hits.delta,
        gstore::tile::sizing::human_bytes(stats.bytes_read)
    );

    println!("top authorities (most linked-to by good hubs):");
    for (v, score) in hits.top(&hits.authority, 5) {
        println!("  page {v:>8}  authority {score:.5}");
    }
    println!("top hubs (link to the best authorities):");
    for (v, score) in hits.top(&hits.hub, 5) {
        println!("  page {v:>8}  hub       {score:.5}");
    }
    Ok(())
}
