//! Offline drop-in subset of the `criterion` crate.
//!
//! Provides the API surface this workspace's benches use — `Criterion`,
//! `BenchmarkGroup`, `Bencher::iter`, `Throughput`, `BenchmarkId`, and the
//! `criterion_group!`/`criterion_main!` macros — backed by a simple
//! mean-of-samples timer instead of upstream's statistical machinery.
//! Results print one line per benchmark: mean time per iteration and
//! derived throughput when declared.

use std::fmt::Display;
use std::time::{Duration, Instant};

pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Declared work per iteration, used to derive throughput.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    Bytes(u64),
    Elements(u64),
}

/// A benchmark name with a parameter, e.g. `compress/4096`.
pub struct BenchmarkId {
    full: String,
}

impl BenchmarkId {
    pub fn new(name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            full: format!("{}/{}", name.into(), parameter),
        }
    }
}

/// Anything usable as a benchmark identifier (`&str` or [`BenchmarkId`]).
pub struct BenchName(String);

impl From<&str> for BenchName {
    fn from(s: &str) -> Self {
        BenchName(s.to_string())
    }
}

impl From<String> for BenchName {
    fn from(s: String) -> Self {
        BenchName(s)
    }
}

impl From<BenchmarkId> for BenchName {
    fn from(id: BenchmarkId) -> Self {
        BenchName(id.full)
    }
}

/// Runs the routine under measurement.
pub struct Bencher {
    samples: u64,
    /// Mean wall-clock per iteration over the measured samples.
    mean: Duration,
}

impl Bencher {
    pub fn iter<R, F: FnMut() -> R>(&mut self, mut routine: F) {
        std::hint::black_box(routine()); // warm-up, untimed
        let start = Instant::now();
        for _ in 0..self.samples {
            std::hint::black_box(routine());
        }
        self.mean = start.elapsed() / self.samples as u32;
    }
}

fn run_one(
    label: &str,
    samples: u64,
    throughput: Option<Throughput>,
    f: impl FnOnce(&mut Bencher),
) {
    let mut b = Bencher {
        samples,
        mean: Duration::ZERO,
    };
    f(&mut b);
    let per_iter = b.mean;
    let rate = throughput.map(|t| {
        let secs = per_iter.as_secs_f64().max(1e-12);
        match t {
            Throughput::Bytes(n) => format!(", {:.1} MiB/s", n as f64 / secs / (1 << 20) as f64),
            Throughput::Elements(n) => format!(", {:.3} Melem/s", n as f64 / secs / 1e6),
        }
    });
    println!(
        "bench {label:<40} {per_iter:>12.2?}/iter{}",
        rate.unwrap_or_default()
    );
}

/// Top-level driver; holds defaults for groups.
pub struct Criterion {
    default_samples: u64,
    /// Set by `--test` on the command line (upstream criterion's bench
    /// smoke mode): every benchmark runs exactly one sample regardless of
    /// `sample_size`, so CI can verify benches execute without paying for
    /// measurement.
    test_mode: bool,
}

impl Default for Criterion {
    fn default() -> Self {
        let test_mode = std::env::args().any(|a| a == "--test");
        Criterion {
            default_samples: if test_mode { 1 } else { 20 },
            test_mode,
        }
    }
}

impl Criterion {
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            samples: self.default_samples,
            test_mode: self.test_mode,
            throughput: None,
            _criterion: self,
        }
    }

    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl Into<BenchName>,
        mut f: F,
    ) -> &mut Self {
        run_one(&id.into().0, self.default_samples, None, |b| f(b));
        self
    }
}

/// A named group of related benchmarks sharing sample/throughput settings.
pub struct BenchmarkGroup<'a> {
    name: String,
    samples: u64,
    test_mode: bool,
    throughput: Option<Throughput>,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        // In --test mode the single-sample override wins.
        if !self.test_mode {
            self.samples = (n as u64).max(1);
        }
        self
    }

    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl Into<BenchName>,
        mut f: F,
    ) -> &mut Self {
        let label = format!("{}/{}", self.name, id.into().0);
        run_one(&label, self.samples, self.throughput, |b| f(b));
        self
    }

    pub fn bench_with_input<I: ?Sized, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: impl Into<BenchName>,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        let label = format!("{}/{}", self.name, id.into().0);
        run_one(&label, self.samples, self.throughput, |b| f(b, input));
        self
    }

    pub fn finish(self) {}
}

#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_measures_and_runs_routine() {
        let mut count = 0u64;
        let mut b = Bencher {
            samples: 8,
            mean: Duration::ZERO,
        };
        b.iter(|| count += 1);
        assert_eq!(count, 9); // 1 warm-up + 8 samples
    }

    #[test]
    fn group_api_chains() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("g");
        g.sample_size(3).throughput(Throughput::Elements(10));
        let mut ran = 0;
        g.bench_function("f", |b| b.iter(|| ran += 1));
        g.bench_with_input(BenchmarkId::new("with", 42), &5u64, |b, &x| {
            b.iter(|| std::hint::black_box(x * 2))
        });
        g.finish();
        assert!(ran > 0);
    }

    #[test]
    fn test_mode_forces_single_sample() {
        let mut c = Criterion {
            default_samples: 1,
            test_mode: true,
        };
        let mut g = c.benchmark_group("t");
        g.sample_size(50);
        assert_eq!(g.samples, 1, "--test mode must ignore sample_size");
    }

    criterion_group!(sample_group, noop_bench);
    fn noop_bench(c: &mut Criterion) {
        c.bench_function("noop", |b| b.iter(|| 1 + 1));
    }

    #[test]
    fn group_macro_compiles_and_runs() {
        sample_group();
    }
}
