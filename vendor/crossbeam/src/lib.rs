//! Offline drop-in subset of the `crossbeam` crate: the `channel` module
//! with MPMC bounded/unbounded channels, built on `Mutex` + `Condvar`.
//!
//! Semantics match crossbeam where the workspace relies on them:
//! * senders and receivers are cloneable (MPMC);
//! * a bounded channel blocks `send` while full (backpressure);
//! * `recv` blocks while the queue is empty and senders exist, then
//!   reports `Disconnected` once the channel is drained and all senders
//!   are gone;
//! * dropping the last receiver makes `send` fail with the value.

pub mod channel {
    use std::collections::VecDeque;
    use std::sync::{Arc, Condvar, Mutex};
    use std::time::{Duration, Instant};

    struct Inner<T> {
        queue: VecDeque<T>,
        capacity: Option<usize>,
        senders: usize,
        receivers: usize,
    }

    struct Chan<T> {
        inner: Mutex<Inner<T>>,
        not_empty: Condvar,
        not_full: Condvar,
    }

    /// Sending half; cloneable.
    pub struct Sender<T> {
        chan: Arc<Chan<T>>,
    }

    /// Receiving half; cloneable.
    pub struct Receiver<T> {
        chan: Arc<Chan<T>>,
    }

    /// The channel is disconnected (no receivers); returns the value.
    #[derive(PartialEq, Eq)]
    pub struct SendError<T>(pub T);

    // Like upstream: Debug without a `T: Debug` bound, message payloads
    // are not printable in general.
    impl<T> std::fmt::Debug for SendError<T> {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.write_str("SendError(..)")
        }
    }

    /// The channel is empty and disconnected.
    #[derive(Debug, PartialEq, Eq)]
    pub struct RecvError;

    #[derive(Debug, PartialEq, Eq)]
    pub enum TryRecvError {
        Empty,
        Disconnected,
    }

    #[derive(Debug, PartialEq, Eq)]
    pub enum RecvTimeoutError {
        Timeout,
        Disconnected,
    }

    /// A channel holding at most `cap` messages; `send` blocks while full.
    pub fn bounded<T>(cap: usize) -> (Sender<T>, Receiver<T>) {
        new_chan(Some(cap))
    }

    /// An unbounded channel; `send` never blocks.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        new_chan(None)
    }

    fn new_chan<T>(capacity: Option<usize>) -> (Sender<T>, Receiver<T>) {
        let chan = Arc::new(Chan {
            inner: Mutex::new(Inner {
                queue: VecDeque::new(),
                capacity,
                senders: 1,
                receivers: 1,
            }),
            not_empty: Condvar::new(),
            not_full: Condvar::new(),
        });
        (
            Sender {
                chan: Arc::clone(&chan),
            },
            Receiver { chan },
        )
    }

    impl<T> Sender<T> {
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            let mut inner = self.chan.inner.lock().unwrap();
            loop {
                if inner.receivers == 0 {
                    return Err(SendError(value));
                }
                let full = inner
                    .capacity
                    .is_some_and(|cap| inner.queue.len() >= cap.max(1));
                if !full {
                    inner.queue.push_back(value);
                    drop(inner);
                    self.chan.not_empty.notify_one();
                    return Ok(());
                }
                inner = self.chan.not_full.wait(inner).unwrap();
            }
        }
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            self.chan.inner.lock().unwrap().senders += 1;
            Sender {
                chan: Arc::clone(&self.chan),
            }
        }
    }

    impl<T> Drop for Sender<T> {
        fn drop(&mut self) {
            let mut inner = self.chan.inner.lock().unwrap();
            inner.senders -= 1;
            if inner.senders == 0 {
                drop(inner);
                // Wake receivers so they can observe disconnection.
                self.chan.not_empty.notify_all();
            }
        }
    }

    impl<T> Receiver<T> {
        pub fn recv(&self) -> Result<T, RecvError> {
            let mut inner = self.chan.inner.lock().unwrap();
            loop {
                if let Some(v) = inner.queue.pop_front() {
                    drop(inner);
                    self.chan.not_full.notify_one();
                    return Ok(v);
                }
                if inner.senders == 0 {
                    return Err(RecvError);
                }
                inner = self.chan.not_empty.wait(inner).unwrap();
            }
        }

        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            let mut inner = self.chan.inner.lock().unwrap();
            match inner.queue.pop_front() {
                Some(v) => {
                    drop(inner);
                    self.chan.not_full.notify_one();
                    Ok(v)
                }
                None if inner.senders == 0 => Err(TryRecvError::Disconnected),
                None => Err(TryRecvError::Empty),
            }
        }

        pub fn recv_timeout(&self, timeout: Duration) -> Result<T, RecvTimeoutError> {
            let deadline = Instant::now() + timeout;
            let mut inner = self.chan.inner.lock().unwrap();
            loop {
                if let Some(v) = inner.queue.pop_front() {
                    drop(inner);
                    self.chan.not_full.notify_one();
                    return Ok(v);
                }
                if inner.senders == 0 {
                    return Err(RecvTimeoutError::Disconnected);
                }
                let now = Instant::now();
                if now >= deadline {
                    return Err(RecvTimeoutError::Timeout);
                }
                let (guard, _) = self
                    .chan
                    .not_empty
                    .wait_timeout(inner, deadline - now)
                    .unwrap();
                inner = guard;
            }
        }

        /// Messages currently queued.
        pub fn len(&self) -> usize {
            self.chan.inner.lock().unwrap().queue.len()
        }

        pub fn is_empty(&self) -> bool {
            self.len() == 0
        }
    }

    impl<T> Clone for Receiver<T> {
        fn clone(&self) -> Self {
            self.chan.inner.lock().unwrap().receivers += 1;
            Receiver {
                chan: Arc::clone(&self.chan),
            }
        }
    }

    impl<T> Drop for Receiver<T> {
        fn drop(&mut self) {
            let mut inner = self.chan.inner.lock().unwrap();
            inner.receivers -= 1;
            if inner.receivers == 0 {
                drop(inner);
                // Wake blocked senders so they can observe disconnection.
                self.chan.not_full.notify_all();
            }
        }
    }

    #[cfg(test)]
    mod tests {
        use super::*;
        use std::time::Duration;

        #[test]
        fn unbounded_roundtrip() {
            let (tx, rx) = unbounded();
            tx.send(1).unwrap();
            tx.send(2).unwrap();
            assert_eq!(rx.recv(), Ok(1));
            assert_eq!(rx.try_recv(), Ok(2));
            assert_eq!(rx.try_recv(), Err(TryRecvError::Empty));
        }

        #[test]
        fn bounded_blocks_until_drained() {
            let (tx, rx) = bounded(2);
            tx.send(1).unwrap();
            tx.send(2).unwrap();
            let t = std::thread::spawn(move || {
                tx.send(3).unwrap(); // blocks until a recv frees a slot
                "sent"
            });
            std::thread::sleep(Duration::from_millis(20));
            assert_eq!(rx.recv(), Ok(1));
            assert_eq!(t.join().unwrap(), "sent");
            assert_eq!(rx.recv(), Ok(2));
            assert_eq!(rx.recv(), Ok(3));
        }

        #[test]
        fn mpmc_all_messages_arrive_exactly_once() {
            let (tx, rx) = bounded(4);
            let mut handles = Vec::new();
            for t in 0..4u64 {
                let tx = tx.clone();
                handles.push(std::thread::spawn(move || {
                    for i in 0..100u64 {
                        tx.send(t * 100 + i).unwrap();
                    }
                }));
            }
            drop(tx);
            let mut consumers = Vec::new();
            for _ in 0..3 {
                let rx = rx.clone();
                consumers.push(std::thread::spawn(move || {
                    let mut got = Vec::new();
                    while let Ok(v) = rx.recv() {
                        got.push(v);
                    }
                    got
                }));
            }
            drop(rx);
            for h in handles {
                h.join().unwrap();
            }
            let mut all: Vec<u64> = consumers
                .into_iter()
                .flat_map(|c| c.join().unwrap())
                .collect();
            all.sort_unstable();
            assert_eq!(all, (0..400).collect::<Vec<u64>>());
        }

        #[test]
        fn disconnection_is_observable() {
            let (tx, rx) = unbounded::<u8>();
            drop(tx);
            assert_eq!(rx.recv(), Err(RecvError));
            assert_eq!(rx.try_recv(), Err(TryRecvError::Disconnected));
            let (tx, rx) = unbounded::<u8>();
            drop(rx);
            assert_eq!(tx.send(9), Err(SendError(9)));
        }

        #[test]
        fn recv_timeout_times_out_then_delivers() {
            let (tx, rx) = unbounded();
            assert_eq!(
                rx.recv_timeout(Duration::from_millis(10)),
                Err(RecvTimeoutError::Timeout)
            );
            tx.send(5).unwrap();
            assert_eq!(rx.recv_timeout(Duration::from_millis(10)), Ok(5));
        }
    }
}
