//! Offline drop-in subset of the `rayon` API.
//!
//! The build environment has no access to crates.io, so the workspace
//! vendors the slice of rayon it uses: `par_iter().map().sum()`,
//! `par_chunks().fold().reduce()` and `into_par_iter().flat_map_iter()
//! .collect()`. Work is split into several contiguous chunks per worker
//! (clamped so no chunk is ever empty) and pulled from a shared-index
//! queue on a lazily started global thread pool, so a heavy chunk delays
//! only the worker that claimed it; results are recombined in input order,
//! so every combinator here is deterministic regardless of thread count.
//! [`par_weighted_chunks`] exposes the same executor with caller-supplied
//! per-item weights for skewed workloads. Nested calls from inside a
//! worker run sequentially (no work-stealing), which keeps the pool
//! deadlock-free.

mod pool;

use std::iter::Sum;
use std::ops::Range;

pub mod prelude {
    pub use crate::{IntoParallelIterator, IntoParallelRefIterator, ParallelSlice};
}

/// How many workers the global pool has.
pub fn current_num_threads() -> usize {
    pool::workers()
}

// ---------------------------------------------------------------------------
// Entry-point traits (the subset of rayon's prelude the workspace uses).
// ---------------------------------------------------------------------------

/// `into_par_iter()` for owned collections / ranges.
pub trait IntoParallelIterator {
    type Item;
    type Iter;
    fn into_par_iter(self) -> Self::Iter;
}

/// `par_iter()` for borrowed slices (and anything derefing to them).
pub trait IntoParallelRefIterator<'a> {
    type Item: 'a;
    fn par_iter(&'a self) -> ParIter<'a, Self::Item>;
}

impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for [T] {
    type Item = T;
    fn par_iter(&'a self) -> ParIter<'a, T> {
        ParIter { slice: self }
    }
}

impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for Vec<T> {
    type Item = T;
    fn par_iter(&'a self) -> ParIter<'a, T> {
        ParIter { slice: self }
    }
}

/// `par_chunks()` on slices.
pub trait ParallelSlice<T: Sync> {
    fn par_chunks(&self, chunk_size: usize) -> ParChunks<'_, T>;
}

impl<T: Sync> ParallelSlice<T> for [T] {
    fn par_chunks(&self, chunk_size: usize) -> ParChunks<'_, T> {
        assert!(chunk_size > 0, "par_chunks: chunk size must be > 0");
        ParChunks {
            slice: self,
            chunk_size,
        }
    }
}

macro_rules! impl_range_par_iter {
    ($($t:ty),*) => {$(
        impl IntoParallelIterator for Range<$t> {
            type Item = $t;
            type Iter = RangeParIter<$t>;
            fn into_par_iter(self) -> RangeParIter<$t> {
                RangeParIter { range: self }
            }
        }
    )*};
}

impl_range_par_iter!(u32, u64, usize);

// ---------------------------------------------------------------------------
// Slice iteration: par_iter().map(f).sum() / .collect().
// ---------------------------------------------------------------------------

pub struct ParIter<'a, T> {
    slice: &'a [T],
}

impl<'a, T: Sync> ParIter<'a, T> {
    pub fn map<U, F>(self, f: F) -> ParMap<'a, T, U, F>
    where
        U: Send,
        F: Fn(&'a T) -> U + Sync,
    {
        ParMap {
            slice: self.slice,
            f,
            _out: std::marker::PhantomData,
        }
    }
}

pub struct ParMap<'a, T, U, F> {
    slice: &'a [T],
    f: F,
    _out: std::marker::PhantomData<fn() -> U>,
}

impl<'a, T: Sync, U: Send, F: Fn(&'a T) -> U + Sync> ParMap<'a, T, U, F> {
    pub fn sum<S>(self) -> S
    where
        S: Sum<U> + Sum<S> + Send,
    {
        let f = &self.f;
        let partials = for_each_part(self.slice, |part| part.iter().map(f).sum::<S>());
        partials.into_iter().sum()
    }

    pub fn collect<C>(self) -> C
    where
        C: FromIterator<U>,
    {
        let f = &self.f;
        let partials = for_each_part(self.slice, |part| part.iter().map(f).collect::<Vec<_>>());
        partials.into_iter().flatten().collect()
    }
}

// ---------------------------------------------------------------------------
// Chunked fold/reduce: par_chunks(n).fold(init, f).reduce(id, g).
// ---------------------------------------------------------------------------

pub struct ParChunks<'a, T> {
    slice: &'a [T],
    chunk_size: usize,
}

impl<'a, T: Sync> ParChunks<'a, T> {
    pub fn fold<Acc, Init, F>(self, init: Init, fold: F) -> ChunksFold<'a, T, Init, F>
    where
        Acc: Send,
        Init: Fn() -> Acc + Sync,
        F: Fn(Acc, &'a [T]) -> Acc + Sync,
    {
        ChunksFold {
            slice: self.slice,
            chunk_size: self.chunk_size,
            init,
            fold,
        }
    }
}

pub struct ChunksFold<'a, T, Init, F> {
    slice: &'a [T],
    chunk_size: usize,
    init: Init,
    fold: F,
}

impl<'a, T: Sync, Init, F> ChunksFold<'a, T, Init, F> {
    pub fn reduce<Acc, Id, G>(self, identity: Id, reduce: G) -> Acc
    where
        Acc: Send,
        Init: Fn() -> Acc + Sync,
        F: Fn(Acc, &'a [T]) -> Acc + Sync,
        Id: Fn() -> Acc,
        G: Fn(Acc, Acc) -> Acc,
    {
        let chunks: Vec<&'a [T]> = self.slice.chunks(self.chunk_size).collect();
        let init = &self.init;
        let fold = &self.fold;
        let partials = for_each_part(&chunks, |part| {
            let mut acc = init();
            for chunk in part {
                acc = fold(acc, chunk);
            }
            acc
        });
        partials.into_iter().fold(identity(), reduce)
    }
}

// ---------------------------------------------------------------------------
// Range iteration: into_par_iter().flat_map_iter(f).collect().
// ---------------------------------------------------------------------------

pub struct RangeParIter<T> {
    range: Range<T>,
}

macro_rules! impl_range_methods {
    ($($t:ty),*) => {$(
        impl RangeParIter<$t> {
            pub fn flat_map_iter<I, F>(self, f: F) -> RangeFlatMap<$t, F>
            where
                I: IntoIterator,
                F: Fn($t) -> I + Sync,
            {
                RangeFlatMap { range: self.range, f }
            }

            pub fn map<U, F>(self, f: F) -> RangeMap<$t, F>
            where
                U: Send,
                F: Fn($t) -> U + Sync,
            {
                RangeMap { range: self.range, f }
            }
        }

        impl<F, I> RangeFlatMap<$t, F>
        where
            I: IntoIterator,
            I::Item: Send,
            F: Fn($t) -> I + Sync,
        {
            pub fn collect<C: FromIterator<I::Item>>(self) -> C {
                let indices: Vec<$t> = self.range.collect();
                let f = &self.f;
                let partials = for_each_part(&indices, |part| {
                    let mut out = Vec::new();
                    for &i in part {
                        out.extend(f(i));
                    }
                    out
                });
                partials.into_iter().flatten().collect()
            }
        }

        impl<U: Send, F: Fn($t) -> U + Sync> RangeMap<$t, F> {
            pub fn collect<C: FromIterator<U>>(self) -> C {
                let indices: Vec<$t> = self.range.collect();
                let f = &self.f;
                let partials =
                    for_each_part(&indices, |part| part.iter().map(|&i| f(i)).collect::<Vec<_>>());
                partials.into_iter().flatten().collect()
            }

            pub fn sum<S>(self) -> S
            where
                S: Sum<U> + Sum<S> + Send,
            {
                let indices: Vec<$t> = self.range.collect();
                let f = &self.f;
                let partials = for_each_part(&indices, |part| part.iter().map(|&i| f(i)).sum::<S>());
                partials.into_iter().sum()
            }
        }
    )*};
}

impl_range_methods!(u32, u64, usize);

pub struct RangeFlatMap<T, F> {
    range: Range<T>,
    f: F,
}

pub struct RangeMap<T, F> {
    range: Range<T>,
    f: F,
}

// ---------------------------------------------------------------------------
// Partitioned execution on the global pool.
// ---------------------------------------------------------------------------

/// How many chunks the uniform splitter aims for per worker. More than 1
/// so the shared-index queue can rebalance when chunks take uneven time;
/// small enough that per-chunk overhead (one `fetch_add`) stays invisible.
const CHUNKS_PER_WORKER: usize = 4;

/// Splits `items` into contiguous equal-size chunks — several per worker,
/// clamped to at most one chunk per item so short inputs never produce
/// empty chunks — and runs `work` over them on the shared-index work
/// queue. Returns the per-chunk results in input order.
fn for_each_part<'s, T, R, W>(items: &'s [T], work: W) -> Vec<R>
where
    T: Sync,
    R: Send,
    W: Fn(&'s [T]) -> R + Sync,
{
    let n = items.len();
    let workers = pool::workers();
    if n == 0 {
        return Vec::new();
    }
    if n == 1 || workers <= 1 || pool::on_worker_thread() {
        // Nested parallelism runs sequentially: a pool worker blocking on
        // jobs it feeds to the same pool could starve itself.
        return vec![work(items)];
    }
    let parts = (workers * CHUNKS_PER_WORKER).min(n);
    let per = n.div_ceil(parts);
    let slices: Vec<&'s [T]> = items.chunks(per).collect();
    pool::run_chunks(&slices, &work)
}

/// Runs `work` over contiguous chunks of `items` whose *total weight* is
/// roughly balanced: chunk boundaries are cut whenever the accumulated
/// `weight` reaches `total / (workers * 4)`, so one pathologically heavy
/// item (an RMAT hub tile) becomes its own chunk instead of dragging a
/// whole equal-count split behind it. Chunks are executed on the
/// shared-index work queue and the per-chunk results are returned in input
/// order — deterministic for a fixed worker count, since the split depends
/// only on the weights.
pub fn par_weighted_chunks<'s, T, R, G, W>(items: &'s [T], weight: G, work: W) -> Vec<R>
where
    T: Sync,
    R: Send,
    G: Fn(&T) -> u64,
    W: Fn(&'s [T]) -> R + Sync,
{
    let n = items.len();
    let workers = pool::workers();
    if n == 0 {
        return Vec::new();
    }
    if n == 1 || workers <= 1 || pool::on_worker_thread() {
        return vec![work(items)];
    }
    let slices = weighted_slices(items, weight, workers * CHUNKS_PER_WORKER);
    pool::run_chunks(&slices, &work)
}

/// The weighted splitter behind [`par_weighted_chunks`]: contiguous chunks
/// cut whenever the accumulated weight reaches `total / target_chunks`,
/// with an item heavy enough to fill a chunk on its own always standing
/// alone. Every chunk is non-empty and together they cover `items` exactly
/// once, in order.
fn weighted_slices<T, G>(items: &[T], weight: G, target_chunks: usize) -> Vec<&[T]>
where
    G: Fn(&T) -> u64,
{
    let n = items.len();
    let total: u64 = items.iter().map(&weight).sum();
    let target_chunks = target_chunks.clamp(1, n) as u64;
    let per_chunk = (total / target_chunks).max(1);
    let mut slices: Vec<&[T]> = Vec::with_capacity(target_chunks as usize);
    let mut start = 0usize;
    let mut acc = 0u64;
    for (i, item) in items.iter().enumerate() {
        let w = weight(item);
        if acc > 0 && w >= per_chunk {
            // Close the accumulated light run first so the heavy item
            // stands alone.
            slices.push(&items[start..i]);
            start = i;
            acc = 0;
        }
        acc += w;
        if acc >= per_chunk {
            slices.push(&items[start..=i]);
            start = i + 1;
            acc = 0;
        }
    }
    if start < n {
        slices.push(&items[start..]);
    }
    slices
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn par_iter_map_sum_matches_sequential() {
        let v: Vec<u64> = (0..10_000).collect();
        let par: u64 = v.par_iter().map(|&x| x * 3).sum();
        let seq: u64 = v.iter().map(|&x| x * 3).sum();
        assert_eq!(par, seq);
    }

    #[test]
    fn par_chunks_fold_reduce_matches_sequential() {
        let v: Vec<u64> = (0..50_000).collect();
        let hist = v
            .par_chunks(1024)
            .fold(
                || vec![0u64; 7],
                |mut acc, chunk| {
                    for &x in chunk {
                        acc[(x % 7) as usize] += 1;
                    }
                    acc
                },
            )
            .reduce(
                || vec![0u64; 7],
                |mut a, b| {
                    for (x, y) in a.iter_mut().zip(b) {
                        *x += y;
                    }
                    a
                },
            );
        assert_eq!(hist.iter().sum::<u64>(), 50_000);
        let mut want = vec![0u64; 7];
        for x in &v {
            want[(x % 7) as usize] += 1;
        }
        assert_eq!(hist, want);
    }

    #[test]
    fn range_flat_map_iter_preserves_order() {
        let out: Vec<u64> = (0u64..100)
            .into_par_iter()
            .flat_map_iter(|i| 0..i % 5)
            .collect();
        let want: Vec<u64> = (0u64..100).flat_map(|i| 0..i % 5).collect();
        assert_eq!(out, want);
    }

    #[test]
    fn empty_inputs() {
        let v: Vec<u64> = Vec::new();
        assert_eq!(v.par_iter().map(|&x| x).sum::<u64>(), 0);
        let out: Vec<u64> = (0u64..0).into_par_iter().flat_map_iter(Some).collect();
        assert!(out.is_empty());
    }

    #[test]
    fn nested_parallelism_does_not_deadlock() {
        let outer: Vec<u64> = (0..64).collect();
        let total: u64 = outer
            .par_iter()
            .map(|&i| {
                let inner: Vec<u64> = (0..100u64).collect();
                inner.par_iter().map(|&j| i + j).sum::<u64>()
            })
            .sum();
        let want: u64 = (0..64u64)
            .map(|i| (0..100u64).map(|j| i + j).sum::<u64>())
            .sum();
        assert_eq!(total, want);
    }

    #[test]
    fn weighted_chunks_cover_every_item_in_order() {
        let items: Vec<u64> = (0..5000).collect();
        // Zipf-ish weights: item 0 dwarfs everything else.
        let out: Vec<u64> = crate::par_weighted_chunks(
            &items,
            |&x| if x == 0 { 1 << 20 } else { 1 + x % 7 },
            |c| c.to_vec(),
        )
        .into_iter()
        .flatten()
        .collect();
        assert_eq!(out, items);
    }

    #[test]
    fn weighted_slices_isolate_heavy_items() {
        // With one dominant weight, the splitter must leave the heavy item
        // alone in its chunk rather than lumping half the input behind it.
        // Tested on the splitter directly (with an explicit target) so the
        // assertion holds even where `par_weighted_chunks` takes the
        // single-worker sequential path.
        let items: Vec<u64> = (0..100).collect();
        let slices = crate::weighted_slices(&items, |&x| if x == 50 { 1_000_000 } else { 1 }, 8);
        let heavy: Vec<_> = slices.iter().filter(|c| c.contains(&50)).collect();
        assert_eq!(heavy.len(), 1);
        assert_eq!(heavy[0], &[50], "heavy item must stand alone");
        let flat: Vec<u64> = slices.iter().flat_map(|c| c.iter().copied()).collect();
        assert_eq!(flat, items, "chunks must cover the input exactly once");
        assert!(slices.iter().all(|c| !c.is_empty()));
    }

    #[test]
    fn weighted_slices_balance_uniform_weights() {
        let items: Vec<u64> = (0..64).collect();
        let slices = crate::weighted_slices(&items, |_| 1, 8);
        assert_eq!(slices.len(), 8);
        assert!(slices.iter().all(|c| c.len() == 8));
    }

    #[test]
    fn weighted_chunks_degenerate_inputs() {
        let empty: Vec<u64> = Vec::new();
        assert!(crate::par_weighted_chunks(&empty, |_| 1, |c: &[u64]| c.len()).is_empty());
        // Zero total weight must still cover everything (no empty chunks,
        // no division blowup).
        let items = vec![7u64, 8, 9];
        let sum: u64 = crate::par_weighted_chunks(&items, |_| 0, |c: &[u64]| c.iter().sum::<u64>())
            .into_iter()
            .sum();
        assert_eq!(sum, 24);
    }

    #[test]
    fn more_items_than_workers_yields_no_empty_chunks() {
        // n slightly above the worker count used to split as ceil(n/w)
        // which could leave fewer, uneven parts; the chunked splitter must
        // cover everything exactly once regardless.
        for n in [1usize, 2, 3, 5, 17, 63] {
            let items: Vec<usize> = (0..n).collect();
            let out: Vec<usize> = items.par_iter().map(|&x| x).collect();
            assert_eq!(out, items, "n={n}");
        }
    }

    #[test]
    #[should_panic(expected = "boom")]
    fn worker_panic_propagates() {
        let v: Vec<u64> = (0..10_000).collect();
        let _: u64 = v
            .par_iter()
            .map(|&x| if x == 9_999 { panic!("boom") } else { x })
            .sum();
    }
}
