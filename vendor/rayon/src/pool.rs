//! A small global worker pool used by the parallel combinators.
//!
//! Jobs are `'static` boxed closures; the scoped-execution entry point
//! [`run_parts`] erases the caller's borrow lifetimes with an unsafe
//! transmute, which is sound because it blocks until every job has
//! finished (a panic in a job is captured and re-thrown on the caller).

use std::any::Any;
use std::cell::Cell;
use std::collections::VecDeque;
use std::sync::{Condvar, Mutex, OnceLock};

type Job = Box<dyn FnOnce() + Send + 'static>;

struct Queue {
    jobs: Mutex<VecDeque<Job>>,
    available: Condvar,
}

static QUEUE: OnceLock<&'static Queue> = OnceLock::new();
static WORKERS: OnceLock<usize> = OnceLock::new();

thread_local! {
    static IS_WORKER: Cell<bool> = const { Cell::new(false) };
}

/// Whether the current thread is one of the pool's workers.
pub fn on_worker_thread() -> bool {
    IS_WORKER.with(|w| w.get())
}

/// Number of workers in the pool (= available parallelism).
pub fn workers() -> usize {
    *WORKERS.get_or_init(|| {
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
    })
}

fn queue() -> &'static Queue {
    QUEUE.get_or_init(|| {
        let q: &'static Queue = Box::leak(Box::new(Queue {
            jobs: Mutex::new(VecDeque::new()),
            available: Condvar::new(),
        }));
        for i in 0..workers() {
            std::thread::Builder::new()
                .name(format!("mini-rayon-{i}"))
                .spawn(move || worker_loop(q))
                .expect("spawn pool worker");
        }
        q
    })
}

fn worker_loop(q: &'static Queue) {
    IS_WORKER.with(|w| w.set(true));
    loop {
        let job = {
            let mut jobs = q.jobs.lock().unwrap();
            loop {
                if let Some(job) = jobs.pop_front() {
                    break job;
                }
                jobs = q.available.wait(jobs).unwrap();
            }
        };
        job();
    }
}

/// Tracks outstanding jobs of one `run_parts` call and the first panic.
struct Latch {
    state: Mutex<LatchState>,
    done: Condvar,
}

struct LatchState {
    remaining: usize,
    panic: Option<Box<dyn Any + Send>>,
}

impl Latch {
    fn job_finished(&self, panic: Option<Box<dyn Any + Send>>) {
        let mut st = self.state.lock().unwrap();
        st.remaining -= 1;
        if st.panic.is_none() {
            st.panic = panic;
        }
        if st.remaining == 0 {
            self.done.notify_all();
        }
    }

    fn wait(&self) {
        let mut st = self.state.lock().unwrap();
        while st.remaining > 0 {
            st = self.done.wait(st).unwrap();
        }
    }
}

/// Runs `work` over every slice in `parts` concurrently, returning results
/// in order. The caller executes the first part itself while the pool
/// handles the rest; blocks until all parts are done. If any part panics,
/// the panic is re-thrown here after every part has finished.
pub fn run_parts<'s, T, R, W>(parts: &[&'s [T]], work: &W) -> Vec<R>
where
    T: Sync,
    R: Send,
    W: Fn(&'s [T]) -> R + Sync,
{
    let n = parts.len();
    let mut results: Vec<Option<R>> = Vec::with_capacity(n);
    results.resize_with(n, || None);

    let latch = Latch {
        state: Mutex::new(LatchState {
            remaining: n - 1,
            panic: None,
        }),
        done: Condvar::new(),
    };

    {
        // One erased-lifetime runner per remaining part. Sound because
        // `latch.wait()` below keeps every borrow alive until all jobs
        // (including panicked ones) have signalled completion.
        let results_ptr = SendPtr(results.as_mut_ptr());
        let latch_ref = &latch;
        let runner = move |i: usize, slice: &'s [T]| {
            let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| work(slice)));
            let ptr = results_ptr;
            match outcome {
                Ok(r) => {
                    // Disjoint slot per job; publication synchronised by the
                    // latch's mutex.
                    unsafe { *ptr.0.add(i) = Some(r) };
                    latch_ref.job_finished(None);
                }
                Err(p) => latch_ref.job_finished(Some(p)),
            }
        };
        let runner_ref: &(dyn Fn(usize, &'s [T]) + Sync) = &runner;

        let q = queue();
        {
            let mut jobs = q.jobs.lock().unwrap();
            for (i, &slice) in parts.iter().enumerate().skip(1) {
                let job_local: Box<dyn FnOnce() + Send + '_> =
                    Box::new(move || runner_ref(i, slice));
                // SAFETY: lifetime erasure only — `latch.wait()` below keeps
                // every borrow alive until all jobs have run to completion.
                let job: Job = unsafe { std::mem::transmute(job_local) };
                jobs.push_back(job);
            }
        }
        q.available.notify_all();

        // The caller works too instead of idling.
        let first = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| work(parts[0])));
        latch.wait();
        match first {
            Ok(r) => results[0] = Some(r),
            Err(p) => std::panic::resume_unwind(p),
        }
        let panic = latch.state.lock().unwrap().panic.take();
        if let Some(p) = panic {
            std::panic::resume_unwind(p);
        }
    }

    results
        .into_iter()
        .map(|r| r.expect("every part completed"))
        .collect()
}

/// A raw pointer that may cross threads (each job writes a disjoint slot).
struct SendPtr<T>(*mut T);
unsafe impl<T> Send for SendPtr<T> {}
unsafe impl<T> Sync for SendPtr<T> {}
impl<T> Copy for SendPtr<T> {}
impl<T> Clone for SendPtr<T> {
    fn clone(&self) -> Self {
        *self
    }
}
