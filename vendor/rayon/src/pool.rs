//! A small global worker pool used by the parallel combinators.
//!
//! Jobs are `'static` boxed closures; the scoped-execution entry point
//! [`run_chunks`] erases the caller's borrow lifetimes with an unsafe
//! transmute, which is sound because it blocks until every job has
//! finished (a panic in a job is captured and re-thrown on the caller).

use std::any::Any;
use std::cell::Cell;
use std::collections::VecDeque;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Condvar, Mutex, OnceLock};

type Job = Box<dyn FnOnce() + Send + 'static>;

struct Queue {
    jobs: Mutex<VecDeque<Job>>,
    available: Condvar,
}

static QUEUE: OnceLock<&'static Queue> = OnceLock::new();
static WORKERS: OnceLock<usize> = OnceLock::new();

thread_local! {
    static IS_WORKER: Cell<bool> = const { Cell::new(false) };
}

/// Whether the current thread is one of the pool's workers.
pub fn on_worker_thread() -> bool {
    IS_WORKER.with(|w| w.get())
}

/// Number of workers in the pool. Defaults to the available parallelism;
/// the `GSTORE_THREADS` environment variable overrides it (clamped to at
/// least 1) for reproducible benchmarking. Read once — the pool is global
/// and its size is fixed for the process lifetime.
pub fn workers() -> usize {
    *WORKERS.get_or_init(|| {
        if let Some(n) = thread_override(std::env::var("GSTORE_THREADS").ok().as_deref()) {
            return n;
        }
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
    })
}

/// Parses a `GSTORE_THREADS` value: positive integers pass through,
/// anything else (absent, empty, zero, garbage) means "no override".
fn thread_override(value: Option<&str>) -> Option<usize> {
    value
        .and_then(|v| v.trim().parse::<usize>().ok())
        .filter(|&n| n > 0)
}

fn queue() -> &'static Queue {
    QUEUE.get_or_init(|| {
        let q: &'static Queue = Box::leak(Box::new(Queue {
            jobs: Mutex::new(VecDeque::new()),
            available: Condvar::new(),
        }));
        for i in 0..workers() {
            std::thread::Builder::new()
                .name(format!("mini-rayon-{i}"))
                .spawn(move || worker_loop(q))
                .expect("spawn pool worker");
        }
        q
    })
}

fn worker_loop(q: &'static Queue) {
    IS_WORKER.with(|w| w.set(true));
    loop {
        let job = {
            let mut jobs = q.jobs.lock().unwrap();
            loop {
                if let Some(job) = jobs.pop_front() {
                    break job;
                }
                jobs = q.available.wait(jobs).unwrap();
            }
        };
        job();
    }
}

/// Tracks outstanding jobs of one `run_chunks` call and the first panic.
struct Latch {
    state: Mutex<LatchState>,
    done: Condvar,
}

struct LatchState {
    remaining: usize,
    panic: Option<Box<dyn Any + Send>>,
}

impl Latch {
    fn job_finished(&self, panic: Option<Box<dyn Any + Send>>) {
        let mut st = self.state.lock().unwrap();
        st.remaining -= 1;
        if st.panic.is_none() {
            st.panic = panic;
        }
        if st.remaining == 0 {
            self.done.notify_all();
        }
    }

    fn wait(&self) {
        let mut st = self.state.lock().unwrap();
        while st.remaining > 0 {
            st = self.done.wait(st).unwrap();
        }
    }
}

/// Runs `work` over every slice in `chunks` concurrently through a shared
/// index: pool workers (and the caller) repeatedly claim the next
/// unclaimed chunk with one `fetch_add`, so a chunk that turns out heavy
/// (an RMAT hub tile) only delays its own worker — the rest keep pulling
/// from the queue instead of idling behind a static split. Results come
/// back in input order regardless of which thread ran which chunk, so the
/// combinators built on top stay deterministic. Blocks until every chunk
/// is done; if any chunk panics, the first panic is re-thrown here after
/// all helpers have quiesced.
pub fn run_chunks<'s, T, R, W>(chunks: &[&'s [T]], work: &W) -> Vec<R>
where
    T: Sync,
    R: Send,
    W: Fn(&'s [T]) -> R + Sync,
{
    let n = chunks.len();
    let mut results: Vec<Option<R>> = Vec::with_capacity(n);
    results.resize_with(n, || None);
    if n == 0 {
        return Vec::new();
    }

    // Helpers beyond the caller itself; never more than there are chunks
    // left for them (the caller always claims at least one), so a short
    // input never enqueues no-op jobs.
    let helpers = (workers() - 1).min(n - 1);
    let next = AtomicUsize::new(0);
    let latch = Latch {
        state: Mutex::new(LatchState {
            remaining: helpers,
            panic: None,
        }),
        done: Condvar::new(),
    };

    {
        let results_ptr = SendPtr(results.as_mut_ptr());
        let next_ref = &next;
        // The claiming loop every participant runs: pull an index, run the
        // chunk, write its disjoint result slot. A panic ends only this
        // participant's loop; remaining chunks are claimed by the others.
        let pull = move || loop {
            let i = next_ref.fetch_add(1, Ordering::Relaxed);
            if i >= n {
                return;
            }
            let r = work(chunks[i]);
            // Disjoint slot per chunk; publication synchronised by the
            // latch's mutex (helpers) or by `pull` returning (caller).
            // Bind the wrapper itself so the closure captures `SendPtr`
            // (Sync), not the raw pointer field.
            let ptr = results_ptr;
            unsafe { *ptr.0.add(i) = Some(r) };
        };
        let pull_ref: &(dyn Fn() + Sync) = &pull;
        let latch_ref = &latch;

        if helpers > 0 {
            let q = queue();
            {
                let mut jobs = q.jobs.lock().unwrap();
                for _ in 0..helpers {
                    let job_local: Box<dyn FnOnce() + Send + '_> = Box::new(move || {
                        let outcome =
                            std::panic::catch_unwind(std::panic::AssertUnwindSafe(pull_ref));
                        latch_ref.job_finished(outcome.err());
                    });
                    // SAFETY: lifetime erasure only — `latch.wait()` below
                    // keeps every borrow alive until all helpers finish.
                    let job: Job = unsafe { std::mem::transmute(job_local) };
                    jobs.push_back(job);
                }
            }
            q.available.notify_all();
        }

        // The caller pulls too instead of idling.
        let own = std::panic::catch_unwind(std::panic::AssertUnwindSafe(pull_ref));
        latch.wait();
        if let Err(p) = own {
            std::panic::resume_unwind(p);
        }
        let panic = latch.state.lock().unwrap().panic.take();
        if let Some(p) = panic {
            std::panic::resume_unwind(p);
        }
    }

    results
        .into_iter()
        .map(|r| r.expect("every chunk completed"))
        .collect()
}

/// A raw pointer that may cross threads (each job writes a disjoint slot).
struct SendPtr<T>(*mut T);
unsafe impl<T> Send for SendPtr<T> {}
unsafe impl<T> Sync for SendPtr<T> {}
impl<T> Copy for SendPtr<T> {}
impl<T> Clone for SendPtr<T> {
    fn clone(&self) -> Self {
        *self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn thread_override_parses_positive_integers_only() {
        assert_eq!(thread_override(Some("8")), Some(8));
        assert_eq!(thread_override(Some(" 3 ")), Some(3));
        assert_eq!(thread_override(Some("0")), None);
        assert_eq!(thread_override(Some("")), None);
        assert_eq!(thread_override(Some("lots")), None);
        assert_eq!(thread_override(None), None);
    }

    #[test]
    fn run_chunks_returns_results_in_input_order() {
        let items: Vec<usize> = (0..1000).collect();
        let chunks: Vec<&[usize]> = items.chunks(7).collect();
        let got = run_chunks(&chunks, &|c: &[usize]| c.iter().sum::<usize>());
        let want: Vec<usize> = items.chunks(7).map(|c| c.iter().sum()).collect();
        assert_eq!(got, want);
    }

    #[test]
    fn run_chunks_handles_fewer_chunks_than_workers() {
        let items = [1usize, 2, 3];
        let chunks: Vec<&[usize]> = items.chunks(1).collect();
        let got = run_chunks(&chunks, &|c: &[usize]| c[0] * 10);
        assert_eq!(got, vec![10, 20, 30]);
        assert!(run_chunks::<usize, usize, _>(&[], &|_| 0).is_empty());
    }

    #[test]
    fn run_chunks_balances_a_heavy_chunk() {
        // One chunk is ~100x heavier; the queue must still complete all of
        // them and preserve order (a static split would tie the heavy chunk
        // to a fixed worker — correctness is the same, so we just pin the
        // contract: every chunk runs exactly once).
        let items: Vec<u64> = (0..64).collect();
        let chunks: Vec<&[u64]> = items.chunks(1).collect();
        let got = run_chunks(&chunks, &|c: &[u64]| {
            let spins = if c[0] == 0 { 100_000 } else { 1_000 };
            let mut acc = c[0];
            for i in 0..spins {
                acc = acc.wrapping_mul(6364136223846793005).wrapping_add(i);
            }
            std::hint::black_box(acc);
            c[0]
        });
        assert_eq!(got, items);
    }
}
