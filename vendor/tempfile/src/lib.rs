//! Offline drop-in subset of the `tempfile` crate: [`tempdir`] /
//! [`TempDir`], which is all this workspace uses. Directory names are
//! unique per process id + an atomic counter; creation retries on
//! collision with concurrent processes.

use std::io;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};

static COUNTER: AtomicU64 = AtomicU64::new(0);

/// A directory under the system temp dir, removed (recursively) on drop.
#[derive(Debug)]
pub struct TempDir {
    path: PathBuf,
}

impl TempDir {
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Consumes the guard without deleting the directory.
    pub fn keep(self) -> PathBuf {
        let path = self.path.clone();
        std::mem::forget(self);
        path
    }
}

impl Drop for TempDir {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.path);
    }
}

/// Creates a fresh directory in the system temp dir.
pub fn tempdir() -> io::Result<TempDir> {
    let base = std::env::temp_dir();
    let pid = std::process::id();
    for _ in 0..1024 {
        let n = COUNTER.fetch_add(1, Ordering::Relaxed);
        let path = base.join(format!(".tmp-gstore-{pid}-{n}"));
        match std::fs::create_dir(&path) {
            Ok(()) => return Ok(TempDir { path }),
            Err(e) if e.kind() == io::ErrorKind::AlreadyExists => continue,
            Err(e) => return Err(e),
        }
    }
    Err(io::Error::other("tempdir: exhausted name attempts"))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn creates_and_cleans_up() {
        let dir = tempdir().unwrap();
        let path = dir.path().to_path_buf();
        assert!(path.is_dir());
        std::fs::write(path.join("f.txt"), b"x").unwrap();
        std::fs::create_dir(path.join("sub")).unwrap();
        drop(dir);
        assert!(!path.exists());
    }

    #[test]
    fn dirs_are_distinct() {
        let a = tempdir().unwrap();
        let b = tempdir().unwrap();
        assert_ne!(a.path(), b.path());
    }

    #[test]
    fn keep_detaches_cleanup() {
        let dir = tempdir().unwrap();
        let path = dir.keep();
        assert!(path.is_dir());
        std::fs::remove_dir_all(&path).unwrap();
    }
}
