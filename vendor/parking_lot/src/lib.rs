//! Offline drop-in subset of `parking_lot`: `Mutex`/`RwLock` with the
//! poison-free API, implemented over `std::sync`. A poisoned std lock
//! (panicked holder) is treated as unlocked, matching parking_lot's
//! behaviour of not propagating poison.

use std::sync::{
    Mutex as StdMutex, MutexGuard, RwLock as StdRwLock, RwLockReadGuard, RwLockWriteGuard,
};

#[derive(Debug, Default)]
pub struct Mutex<T> {
    inner: StdMutex<T>,
}

impl<T> Mutex<T> {
    pub const fn new(value: T) -> Self {
        Mutex {
            inner: StdMutex::new(value),
        }
    }

    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.inner.lock().unwrap_or_else(|e| e.into_inner())
    }

    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(|e| e.into_inner())
    }

    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

#[derive(Debug, Default)]
pub struct RwLock<T> {
    inner: StdRwLock<T>,
}

impl<T> RwLock<T> {
    pub const fn new(value: T) -> Self {
        RwLock {
            inner: StdRwLock::new(value),
        }
    }

    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.inner.read().unwrap_or_else(|e| e.into_inner())
    }

    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.inner.write().unwrap_or_else(|e| e.into_inner())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_basic() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
    }

    #[test]
    fn rwlock_basic() {
        let l = RwLock::new(vec![1, 2]);
        assert_eq!(l.read().len(), 2);
        l.write().push(3);
        assert_eq!(*l.read(), vec![1, 2, 3]);
    }

    #[test]
    fn lock_survives_holder_panic() {
        let m = std::sync::Arc::new(Mutex::new(0));
        let m2 = m.clone();
        let _ = std::thread::spawn(move || {
            let _g = m2.lock();
            panic!("poison attempt");
        })
        .join();
        *m.lock() += 1; // must not panic
        assert_eq!(*m.lock(), 1);
    }
}
