//! Offline drop-in subset of the `proptest` crate.
//!
//! Implements the slice of the API this workspace uses: the
//! [`strategy::Strategy`] trait with `prop_map`/`prop_flat_map`, range and
//! tuple strategies, [`strategy::any`], [`collection::vec`],
//! [`test_runner::ProptestConfig`], and the
//! `proptest!` / `prop_assert!` / `prop_assert_eq!` macros.
//!
//! Differences from upstream, acceptable for this workspace:
//! * no shrinking — a failing case reports its inputs (via the panic from
//!   the assert) and the deterministic case number, but is not minimised;
//! * the value stream is deterministic per test name (seeded from a hash
//!   of the test path), so failures reproduce exactly across runs.

pub mod strategy {
    use crate::test_runner::TestRng;
    use rand::Rng;

    /// A recipe for generating values of `Self::Value`.
    pub trait Strategy {
        type Value;

        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Transforms every generated value through `f`.
        fn prop_map<U, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> U,
        {
            Map { inner: self, f }
        }

        /// Generates a value, then generates from the strategy `f` builds
        /// out of it (dependent strategies).
        fn prop_flat_map<S2, F>(self, f: F) -> FlatMap<Self, F>
        where
            Self: Sized,
            S2: Strategy,
            F: Fn(Self::Value) -> S2,
        {
            FlatMap { inner: self, f }
        }
    }

    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S, U, F> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> U,
    {
        type Value = U;

        fn generate(&self, rng: &mut TestRng) -> U {
            (self.f)(self.inner.generate(rng))
        }
    }

    pub struct FlatMap<S, F> {
        inner: S,
        f: F,
    }

    impl<S, S2, F> Strategy for FlatMap<S, F>
    where
        S: Strategy,
        S2: Strategy,
        F: Fn(S::Value) -> S2,
    {
        type Value = S2::Value;

        fn generate(&self, rng: &mut TestRng) -> S2::Value {
            let first = self.inner.generate(rng);
            (self.f)(first).generate(rng)
        }
    }

    /// Always produces clones of one value.
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;

        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// `low..high` is a strategy for a uniform value in the half-open range.
    impl<T> Strategy for std::ops::Range<T>
    where
        T: rand::SampleUniform + Clone,
    {
        type Value = T;

        fn generate(&self, rng: &mut TestRng) -> T {
            rng.gen_range(self.clone())
        }
    }

    macro_rules! impl_tuple_strategy {
        ($(($($s:ident . $idx:tt),+))*) => {$(
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);

                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$idx.generate(rng),)+)
                }
            }
        )*};
    }

    impl_tuple_strategy! {
        (A.0)
        (A.0, B.1)
        (A.0, B.1, C.2)
        (A.0, B.1, C.2, D.3)
        (A.0, B.1, C.2, D.3, E.4)
        (A.0, B.1, C.2, D.3, E.4, F.5)
    }

    /// Types with a canonical "whole domain" strategy (upstream `Arbitrary`).
    pub trait Arbitrary: Sized {
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    impl<T: rand::Standard> Arbitrary for T {
        fn arbitrary(rng: &mut TestRng) -> Self {
            rng.gen()
        }
    }

    /// Strategy over the full domain of `T`.
    pub struct Any<T> {
        _marker: std::marker::PhantomData<fn() -> T>,
    }

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;

        fn generate(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }

    pub fn any<T: Arbitrary>() -> Any<T> {
        Any {
            _marker: std::marker::PhantomData,
        }
    }
}

pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use rand::Rng;

    /// Element-count bounds for collection strategies (inclusive).
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        min: usize,
        max: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { min: n, max: n }
        }
    }

    impl From<std::ops::Range<usize>> for SizeRange {
        fn from(r: std::ops::Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                min: r.start,
                max: r.end - 1,
            }
        }
    }

    impl From<std::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: std::ops::RangeInclusive<usize>) -> Self {
            SizeRange {
                min: *r.start(),
                max: *r.end(),
            }
        }
    }

    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// A strategy for `Vec`s of `element` values with length in `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = if self.size.min == self.size.max {
                self.size.min
            } else {
                rng.gen_range(self.size.min..self.size.max + 1)
            };
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

pub mod test_runner {
    use rand::SeedableRng;

    /// The deterministic RNG driving value generation.
    pub type TestRng = rand::rngs::StdRng;

    /// Runner configuration; only `cases` is honoured by this subset.
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        pub cases: u32,
    }

    impl ProptestConfig {
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 256 }
        }
    }

    /// Deterministic per-test seed: FNV-1a over the test's name.
    pub fn rng_for(test_name: &str) -> TestRng {
        let mut h: u64 = 0xcbf29ce484222325;
        for b in test_name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x100000001b3);
        }
        TestRng::seed_from_u64(h)
    }
}

pub mod prelude {
    pub use crate::strategy::{any, Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};
}

/// Runs each contained `fn name(arg in strategy, ...) { body }` as a test
/// over `config.cases` generated inputs. On failure the panic carries the
/// case number so the deterministic stream can be replayed.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! {
            ($crate::test_runner::ProptestConfig::default()) $($rest)*
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (($cfg:expr)) => {};
    (($cfg:expr)
        $(#[$meta:meta])*
        fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let config: $crate::test_runner::ProptestConfig = $cfg;
            let mut rng = $crate::test_runner::rng_for(concat!(module_path!(), "::", stringify!($name)));
            for case in 0..config.cases {
                $(let $arg = $crate::strategy::Strategy::generate(&($strat), &mut rng);)+
                let run = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| $body));
                if let Err(payload) = run {
                    eprintln!(
                        "proptest: {} failed at case {}/{} (deterministic seed)",
                        stringify!($name), case, config.cases,
                    );
                    std::panic::resume_unwind(payload);
                }
            }
        }
        $crate::__proptest_impl! { ($cfg) $($rest)* }
    };
}

/// `prop_assert!` — assert inside a proptest body.
#[macro_export]
macro_rules! prop_assert {
    ($($t:tt)*) => { assert!($($t)*) };
}

/// `prop_assert_eq!` — equality assert inside a proptest body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($t:tt)*) => { assert_eq!($($t)*) };
}

/// `prop_assert_ne!` — inequality assert inside a proptest body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($t:tt)*) => { assert_ne!($($t)*) };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;
    use crate::strategy::Strategy;

    #[test]
    fn ranges_and_tuples_generate_in_bounds() {
        let mut rng = crate::test_runner::rng_for("ranges");
        let strat = (1u64..10, 0u8..3, 5usize..6);
        for _ in 0..500 {
            let (a, b, c) = strat.generate(&mut rng);
            assert!((1..10).contains(&a));
            assert!(b < 3);
            assert_eq!(c, 5);
        }
    }

    #[test]
    fn vec_strategy_respects_size_bounds() {
        let mut rng = crate::test_runner::rng_for("vecs");
        let ranged = crate::collection::vec(0u64..5, 2..7);
        let exact = crate::collection::vec(any::<bool>(), 4);
        for _ in 0..200 {
            let v = ranged.generate(&mut rng);
            assert!((2..=6).contains(&v.len()));
            assert!(v.iter().all(|&x| x < 5));
            assert_eq!(exact.generate(&mut rng).len(), 4);
        }
    }

    #[test]
    fn flat_map_feeds_dependent_strategy() {
        let mut rng = crate::test_runner::rng_for("flat_map");
        let strat = (2u64..50).prop_flat_map(|n| (0..n).prop_map(move |v| (n, v)));
        for _ in 0..500 {
            let (n, v) = strat.generate(&mut rng);
            assert!(v < n);
        }
    }

    #[test]
    fn deterministic_per_name() {
        let a: Vec<u64> = {
            let mut rng = crate::test_runner::rng_for("x");
            (0..10).map(|_| (0u64..1000).generate(&mut rng)).collect()
        };
        let b: Vec<u64> = {
            let mut rng = crate::test_runner::rng_for("x");
            (0..10).map(|_| (0u64..1000).generate(&mut rng)).collect()
        };
        assert_eq!(a, b);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        /// The macro itself: bindings, trailing comma, multiple fns.
        #[test]
        fn macro_generates_cases(a in 0u64..100, b in any::<bool>(),) {
            prop_assert!(a < 100);
            let _ = b;
        }

        #[test]
        fn macro_second_fn(v in crate::collection::vec(0u8..4, 0..9)) {
            prop_assert!(v.len() < 9);
            prop_assert_eq!(v.iter().filter(|&&x| x >= 4).count(), 0);
        }
    }
}
