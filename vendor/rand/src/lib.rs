//! Offline drop-in subset of the `rand` crate API.
//!
//! The build environment has no access to crates.io, so the workspace
//! vendors the small slice of `rand` it actually uses: the [`Rng`]
//! extension methods `gen`/`gen_range`/`fill`, [`SeedableRng::seed_from_u64`],
//! and [`rngs::StdRng`]. The generator core is xoshiro256++ seeded through
//! SplitMix64 — a different stream than upstream `StdRng` (ChaCha12), which
//! is fine here: every consumer in this workspace treats the stream as an
//! arbitrary deterministic function of the seed and validates results
//! against independently computed references.

/// Uniform sampling of a value of `Self` from raw generator output.
pub trait Standard: Sized {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

/// The raw generator interface: a source of uniform 64-bit words.
pub trait RngCore {
    fn next_u64(&mut self) -> u64;

    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let w = self.next_u64().to_le_bytes();
            rem.copy_from_slice(&w[..rem.len()]);
        }
    }
}

/// The user-facing extension methods (`rand::Rng`).
pub trait Rng: RngCore {
    /// Uniform value of `T` (for floats: uniform in `[0, 1)`).
    fn gen<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    /// Uniform value in `range` (half-open).
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        T: SampleUniform,
        R: Into<UniformRange<T>>,
    {
        let UniformRange { low, high } = range.into();
        T::sample_range(self, low, high)
    }

    /// Fills `dest` with random bytes.
    fn fill(&mut self, dest: &mut [u8]) {
        self.fill_bytes(dest);
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Construction of a generator from seed material.
pub trait SeedableRng: Sized {
    fn seed_from_u64(seed: u64) -> Self;
}

/// A half-open sampling interval, converted from `Range<T>`.
pub struct UniformRange<T> {
    low: T,
    high: T,
}

impl<T> From<std::ops::Range<T>> for UniformRange<T> {
    fn from(r: std::ops::Range<T>) -> Self {
        UniformRange {
            low: r.start,
            high: r.end,
        }
    }
}

/// Types uniformly samplable over a half-open range.
pub trait SampleUniform: Sized {
    fn sample_range<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self;
}

macro_rules! impl_uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_range<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
                assert!(low < high, "gen_range: empty range");
                let span = (high as u128).wrapping_sub(low as u128) as u128;
                // Multiply-shift rejection-free mapping is biased for huge
                // spans; use simple rejection sampling with a power-of-two
                // mask, which is unbiased and fast for the spans used here.
                let mask = span.next_power_of_two() - 1;
                loop {
                    let raw = ((rng.next_u64() as u128) << 64 | rng.next_u64() as u128) & mask;
                    if raw < span {
                        return (low as u128).wrapping_add(raw) as $t;
                    }
                }
            }
        }
        impl Standard for $t {
            fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 random mantissa bits -> uniform in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl SampleUniform for f64 {
    fn sample_range<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
        assert!(low < high, "gen_range: empty range");
        let u: f64 = Standard::sample(rng);
        low + u * (high - low)
    }
}

pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic 64-bit generator: xoshiro256++ seeded via SplitMix64.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // SplitMix64 expansion, the canonical way to seed xoshiro.
            let mut x = seed;
            let mut next = move || {
                x = x.wrapping_add(0x9E3779B97F4A7C15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
                z ^ (z >> 31)
            };
            let mut s = [next(), next(), next(), next()];
            if s == [0, 0, 0, 0] {
                s[0] = 1; // xoshiro must not be seeded all-zero
            }
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        #[inline]
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

/// A generator seeded from process-unique entropy (address-space layout +
/// a monotonic counter); no OS RNG needed.
pub fn thread_rng() -> rngs::StdRng {
    use std::sync::atomic::{AtomicU64, Ordering};
    static COUNTER: AtomicU64 = AtomicU64::new(0);
    let unique = &COUNTER as *const _ as u64;
    let n = COUNTER.fetch_add(1, Ordering::Relaxed);
    <rngs::StdRng as SeedableRng>::seed_from_u64(
        unique ^ n.wrapping_mul(0x9E3779B97F4A7C15) ^ std::process::id() as u64,
    )
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(StdRng::seed_from_u64(42).next_u64(), c.next_u64());
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut r = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let x: f64 = r.gen();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn gen_range_bounds_and_coverage() {
        let mut r = StdRng::seed_from_u64(1);
        let mut seen = [false; 10];
        for _ in 0..1000 {
            let v: u64 = r.gen_range(3..13u64);
            assert!((3..13).contains(&v));
            seen[(v - 3) as usize] = true;
        }
        assert!(seen.iter().all(|&s| s), "all values in a small range hit");
    }

    #[test]
    fn gen_range_full_width_spans() {
        let mut r = StdRng::seed_from_u64(9);
        for _ in 0..100 {
            let v: u64 = r.gen_range(0..u64::MAX);
            assert!(v < u64::MAX);
        }
        let v: usize = r.gen_range(0..1usize);
        assert_eq!(v, 0);
    }

    #[test]
    fn fill_bytes_covers_tail() {
        let mut r = StdRng::seed_from_u64(5);
        let mut buf = [0u8; 13];
        r.fill(&mut buf);
        assert!(buf.iter().any(|&b| b != 0));
    }

    #[test]
    fn mean_is_centered() {
        let mut r = StdRng::seed_from_u64(11);
        let n = 100_000;
        let sum: f64 = (0..n).map(|_| r.gen::<f64>()).sum();
        let mean = sum / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }
}
