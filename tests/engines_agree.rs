//! Cross-engine agreement: G-Store, the X-Stream-style baseline, and the
//! FlashGraph-style baseline must produce identical results on the same
//! graphs — the precondition for every performance comparison in the
//! paper's §VII.

use gstore::baselines::flashgraph::{FlashGraphConfig, FlashGraphEngine};
use gstore::baselines::xstream::{XStreamConfig, XStreamEngine};
use gstore::graph::gen::{generate_powerlaw, generate_rmat, PowerLawParams, RmatParams};
use gstore::graph::{reference, CompactDegrees};
use gstore::prelude::*;

const PR_ITERS: u32 = 10;
const DAMPING: f64 = 0.85;

fn workloads() -> Vec<(String, EdgeList)> {
    let mut v = Vec::new();
    for kind in [GraphKind::Undirected, GraphKind::Directed] {
        for seed in [1u64, 2] {
            let el =
                generate_rmat(&RmatParams::kron(9, 6).with_kind(kind).with_seed(seed)).unwrap();
            v.push((format!("kron-{kind:?}-{seed}"), el));
        }
    }
    let el = generate_powerlaw(&PowerLawParams::twitter_like(40_000)).unwrap();
    v.push(("twitter-like".into(), el));
    v
}

fn gstore_run(el: &EdgeList) -> (Vec<u32>, Vec<f64>, Vec<u64>) {
    let store = TileStore::build(el, &ConversionOptions::new(6).with_group_side(2)).unwrap();
    let seg = (store.data_bytes() / 4).max(1024);
    let tiling = *store.layout().tiling();
    let mut engine = GStoreEngine::builder()
        .store(&store)
        .scr(ScrConfig::new(seg, seg * 3).unwrap())
        .build()
        .unwrap();
    let mut bfs = Bfs::new(tiling, 0);
    engine.run(&mut bfs, 10_000).unwrap();
    engine.clear_cache();
    let deg = CompactDegrees::from_edge_list(el).unwrap().to_vec();
    let mut pr = PageRank::new(tiling, deg, DAMPING).with_iterations(PR_ITERS);
    engine.run(&mut pr, PR_ITERS).unwrap();
    engine.clear_cache();
    let mut wcc = Wcc::new(tiling);
    engine.run(&mut wcc, 10_000).unwrap();
    (bfs.depths(), pr.ranks().to_vec(), wcc.labels())
}

#[test]
fn all_three_engines_agree_with_references() {
    for (name, el) in workloads() {
        let (gs_bfs, gs_pr, gs_wcc) = gstore_run(&el);

        let xs = XStreamEngine::in_memory(&el, XStreamConfig::new(8).unwrap()).unwrap();
        let (xs_bfs, _) = xs.bfs(0).unwrap();
        let (xs_pr, _) = xs.pagerank(PR_ITERS, DAMPING).unwrap();
        let (xs_wcc, _) = xs.wcc().unwrap();

        let mut fg = FlashGraphEngine::in_memory(&el, FlashGraphConfig::default()).unwrap();
        let (fg_bfs, _) = fg.bfs(0).unwrap();
        let (fg_pr, _) = fg.pagerank(PR_ITERS, DAMPING).unwrap();
        let (fg_wcc, _) = fg.wcc().unwrap();

        let ref_bfs = reference::bfs_levels(&reference::bfs_csr(&el), 0);
        let ref_pr = reference::pagerank(
            &Csr::from_edge_list(&el, CsrDirection::Out),
            PR_ITERS as usize,
            DAMPING,
        );
        let ref_wcc = reference::wcc_labels(&el);

        assert_eq!(gs_bfs, ref_bfs, "{name}: gstore bfs");
        assert_eq!(xs_bfs, ref_bfs, "{name}: xstream bfs");
        assert_eq!(fg_bfs, ref_bfs, "{name}: flashgraph bfs");

        for (i, r) in ref_pr.iter().enumerate() {
            assert!((gs_pr[i] - r).abs() < 1e-9, "{name}: gstore pr[{i}]");
            assert!((xs_pr[i] - r).abs() < 1e-9, "{name}: xstream pr[{i}]");
            assert!((fg_pr[i] - r).abs() < 1e-9, "{name}: flashgraph pr[{i}]");
        }

        assert_eq!(gs_wcc, ref_wcc, "{name}: gstore wcc");
        assert_eq!(xs_wcc, ref_wcc, "{name}: xstream wcc");
        assert_eq!(fg_wcc, ref_wcc, "{name}: flashgraph wcc");
    }
}

#[test]
fn io_accounting_reflects_architectures() {
    // The structural claim behind the paper's speedups: per iteration,
    // X-Stream streams everything, FlashGraph reads both directions,
    // G-Store reads half the undirected data once and caches.
    let el = generate_rmat(&RmatParams::kron(10, 8)).unwrap();

    let store = TileStore::build(&el, &ConversionOptions::new(6)).unwrap();
    let seg = (store.data_bytes() / 4).max(1024);
    // Pool big enough for everything: G-Store reads the data exactly once.
    let mut engine = GStoreEngine::builder()
        .store(&store)
        .scr(ScrConfig::new(seg, 2 * seg + 2 * store.data_bytes()).unwrap())
        .build()
        .unwrap();
    let deg = CompactDegrees::from_edge_list(&el).unwrap().to_vec();
    let iters = 4u32;
    let mut pr = PageRank::new(*store.layout().tiling(), deg, DAMPING).with_iterations(iters);
    let gs = engine.run(&mut pr, iters).unwrap();
    assert_eq!(
        gs.bytes_read,
        store.data_bytes(),
        "gstore reads data exactly once"
    );

    let xs = XStreamEngine::in_memory(&el, XStreamConfig::new(8).unwrap()).unwrap();
    let (_, xstats) = xs.pagerank(iters, DAMPING).unwrap();
    // X-Stream: 8 bytes/tuple, both orientations, degree pass + one full
    // stream per iteration — an 8x+ larger edge-read volume than G-Store.
    assert_eq!(
        xstats.edge_bytes_read,
        (iters as u64 + 1) * xs.meta().tuple_count * 8
    );
    assert!(xstats.edge_bytes_read >= 8 * gs.bytes_read);

    let mut fg = FlashGraphEngine::in_memory(
        &el,
        FlashGraphConfig {
            page_bytes: 4096,
            cache_bytes: store.data_bytes() / 2,
        },
    )
    .unwrap();
    let (_, fstats) = fg.pagerank(iters, DAMPING).unwrap();
    // FlashGraph's CSR is 2x G-Store's tile data; with a cache smaller
    // than the blob it must fetch at least that 2x every iteration.
    assert!(fstats.bytes_fetched > gs.bytes_read);
}
