//! Larger end-to-end soak tests, `#[ignore]`d by default (each takes tens
//! of seconds). Run with:
//!
//! ```text
//! cargo test --release --test stress -- --ignored
//! ```

use gstore::graph::gen::{generate_rmat, RmatParams};
use gstore::graph::{reference, CompactDegrees};
use gstore::prelude::*;

/// Scale-20 graph (1M vertices, 16M edges) through real files with a
/// memory budget of one eighth of the data: many segments, heavy pool
/// churn, three algorithms back-to-back on one engine.
#[test]
#[ignore = "soak test: ~1 minute in release mode"]
fn scale20_file_backed_soak() {
    let dir = tempfile::tempdir().unwrap();
    let el = generate_rmat(&RmatParams::kron(20, 16)).unwrap();
    let store = TileStore::build(&el, &ConversionOptions::new(12).with_group_side(16)).unwrap();
    let paths = gstore::tile::write_store(&store, dir.path(), "soak").unwrap();
    let tiling = *store.layout().tiling();
    let seg = 1u64 << 20;
    let mut engine = GStoreEngine::builder()
        .paths(&paths)
        .scr(ScrConfig::new(seg, store.data_bytes() / 8 + 2 * seg).unwrap())
        .build()
        .unwrap();

    let mut bfs = Bfs::new(tiling, 0);
    let stats = engine.run(&mut bfs, 10_000).unwrap();
    assert_eq!(
        bfs.depths(),
        reference::bfs_levels(&reference::bfs_csr(&el), 0)
    );
    assert!(stats.bytes_read > 0);

    engine.clear_cache();
    let deg = CompactDegrees::from_edge_list(&el).unwrap().to_vec();
    let mut pr = PageRank::new(tiling, deg, 0.85).with_iterations(5);
    engine.run(&mut pr, 5).unwrap();
    let sum: f64 = pr.ranks().iter().sum();
    assert!((sum - 1.0).abs() < 1e-9);

    engine.clear_cache();
    let mut wcc = Wcc::new(tiling);
    engine.run(&mut wcc, 10_000).unwrap();
    assert_eq!(wcc.labels(), reference::wcc_labels(&el));
}

/// Sixty-four concurrent BFS sources sharing tile scans on a scale-16
/// graph, each validated against the single-source reference.
#[test]
#[ignore = "soak test: ~30 seconds in release mode"]
fn multi_bfs_64_sources() {
    let el = generate_rmat(&RmatParams::kron(16, 8)).unwrap();
    let store = TileStore::build(&el, &ConversionOptions::new(10).with_group_side(8)).unwrap();
    let tiling = *store.layout().tiling();
    let roots: Vec<u64> = (0..64u64)
        .map(|i| (i * 997) % tiling.vertex_count())
        .collect();
    let mut mb = gstore::core::MultiBfs::new(tiling, &roots).unwrap();
    let seg = 256u64 << 10;
    let mut engine = GStoreEngine::builder()
        .store(&store)
        .scr(ScrConfig::new(seg, store.data_bytes() / 2 + 2 * seg).unwrap())
        .build()
        .unwrap();
    engine.run(&mut mb, 10_000).unwrap();
    let csr = reference::bfs_csr(&el);
    for (b, &r) in roots.iter().enumerate() {
        assert_eq!(mb.depths_of(b), reference::bfs_levels(&csr, r), "root {r}");
    }
}
