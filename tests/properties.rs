//! Property-based tests over the core invariants of the storage format
//! and the engine, on arbitrary generated graphs.

use gstore::graph::{reference, CompactDegrees};
use gstore::prelude::*;
use gstore::scr::{CacheHint, CachePool};
use gstore::tile::compress::{compress_tile, decompress_tile};
use proptest::prelude::*;

/// Strategy: a small arbitrary graph (vertex count, kind, edges).
fn arb_graph() -> impl Strategy<Value = EdgeList> {
    (2u64..200, any::<bool>()).prop_flat_map(|(n, directed)| {
        let kind = if directed {
            GraphKind::Directed
        } else {
            GraphKind::Undirected
        };
        proptest::collection::vec((0..n, 0..n), 0..400).prop_map(move |pairs| {
            let edges = pairs.into_iter().map(|(s, d)| Edge::new(s, d)).collect();
            EdgeList::new(n, kind, edges).unwrap()
        })
    })
}

fn canonical_multiset(el: &EdgeList) -> Vec<Edge> {
    let mut v: Vec<Edge> = if el.kind().is_directed() {
        el.edges().to_vec()
    } else {
        el.edges().iter().map(|e| e.canonical()).collect()
    };
    v.sort_unstable();
    v
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Tile conversion preserves the (canonicalised) edge multiset for
    /// every tile size, grouping, and encoding.
    #[test]
    fn conversion_preserves_edges(
        el in arb_graph(),
        tile_bits in 1u32..9,
        q in 1u32..6,
        enc_sel in 0u8..3,
    ) {
        let enc = match enc_sel {
            0 => EdgeEncoding::Snb,
            1 => EdgeEncoding::Tuple8,
            _ => EdgeEncoding::Tuple16,
        };
        let opts = ConversionOptions::new(tile_bits).with_group_side(q).with_encoding(enc);
        let store = TileStore::build(&el, &opts).unwrap();
        let mut got = store.to_edges();
        got.sort_unstable();
        prop_assert_eq!(got, canonical_multiset(&el));
    }

    /// Persisting and reopening a store is lossless.
    #[test]
    fn file_roundtrip_lossless(el in arb_graph(), tile_bits in 1u32..8) {
        let dir = tempfile::tempdir().unwrap();
        let store = TileStore::build(&el, &ConversionOptions::new(tile_bits)).unwrap();
        let paths = gstore::tile::write_store(&store, dir.path(), "p").unwrap();
        let back = gstore::tile::TileFile::open(&paths).unwrap().load_all().unwrap();
        prop_assert_eq!(back.data(), store.data());
        prop_assert_eq!(back.start_edge(), store.start_edge());
    }

    /// The streaming out-of-core converter produces byte-identical
    /// `.tiles`/`.start` pairs (and the same degree array) as the
    /// in-memory converter, for every layout, encoding, kind, tuple
    /// width, and chunk sizes that do and don't divide the edge count.
    #[test]
    fn streaming_conversion_is_byte_identical(
        el in arb_graph(),
        tile_bits in 1u32..9,
        q in 1u32..6,
        enc_sel in 0u8..3,
        wide in any::<bool>(),
        no_sym in any::<bool>(),
        chunk in 1usize..97,
    ) {
        let enc = match enc_sel {
            0 => EdgeEncoding::Snb,
            1 => EdgeEncoding::Tuple8,
            _ => EdgeEncoding::Tuple16,
        };
        let mut copts = ConversionOptions::new(tile_bits).with_group_side(q).with_encoding(enc);
        if no_sym {
            copts = copts.without_symmetry();
        }
        let dir = tempfile::tempdir().unwrap();
        let edge_path = dir.path().join("g.el");
        let width = if wide { TupleWidth::U64 } else { TupleWidth::U32 };
        el.write_binary(&edge_path, width).unwrap();

        let mem_dir = dir.path().join("mem");
        std::fs::create_dir_all(&mem_dir).unwrap();
        let store = gstore::tile::convert(&el, &copts).unwrap();
        let mem_paths = gstore::tile::write_store(&store, &mem_dir, "g").unwrap();

        let sopts = StreamingOptions::new(copts).with_chunk_edges(chunk);
        let report = convert_streaming(&edge_path, &dir.path().join("st"), "g", &sopts).unwrap();

        prop_assert_eq!(
            std::fs::read(&report.paths.tiles).unwrap(),
            std::fs::read(&mem_paths.tiles).unwrap()
        );
        prop_assert_eq!(
            std::fs::read(&report.paths.start).unwrap(),
            std::fs::read(&mem_paths.start).unwrap()
        );
        prop_assert_eq!(report.degrees, CompactDegrees::from_edge_list(&el).ok());
    }

    /// Engine BFS equals reference BFS on arbitrary graphs and roots.
    #[test]
    fn engine_bfs_matches_reference(el in arb_graph(), root_seed in 0u64..1000) {
        let root = root_seed % el.vertex_count();
        let store = TileStore::build(&el, &ConversionOptions::new(3).with_group_side(2)).unwrap();
        let seg = (store.data_bytes() / 3).max(64);
        let mut engine = GStoreEngine::builder()
            .store(&store)
            .scr(ScrConfig::new(seg, seg * 3).unwrap())
            .build()
            .unwrap();
        let mut bfs = Bfs::new(*store.layout().tiling(), root);
        engine.run(&mut bfs, 10_000).unwrap();
        prop_assert_eq!(bfs.depths(), reference::bfs_levels(&reference::bfs_csr(&el), root));
    }

    /// Engine WCC equals union-find on arbitrary graphs.
    #[test]
    fn engine_wcc_matches_union_find(el in arb_graph()) {
        let store = TileStore::build(&el, &ConversionOptions::new(4)).unwrap();
        let seg = (store.data_bytes() / 3).max(64);
        let mut engine = GStoreEngine::builder()
            .store(&store)
            .scr(ScrConfig::new(seg, seg * 3).unwrap())
            .build()
            .unwrap();
        let mut wcc = Wcc::new(*store.layout().tiling());
        engine.run(&mut wcc, 10_000).unwrap();
        prop_assert_eq!(wcc.labels(), reference::wcc_labels(&el));
    }

    /// PageRank mass is conserved (sums to 1) for any graph.
    #[test]
    fn engine_pagerank_conserves_mass(el in arb_graph()) {
        let store = TileStore::build(&el, &ConversionOptions::new(4)).unwrap();
        let seg = (store.data_bytes() / 2).max(64);
        let mut engine = GStoreEngine::builder()
            .store(&store)
            .scr(ScrConfig::new(seg, seg * 3).unwrap())
            .build()
            .unwrap();
        let deg = gstore::graph::CompactDegrees::from_edge_list(&el).unwrap().to_vec();
        let mut pr = PageRank::new(*store.layout().tiling(), deg, 0.85).with_iterations(5);
        engine.run(&mut pr, 5).unwrap();
        let sum: f64 = pr.ranks().iter().sum();
        prop_assert!((sum - 1.0).abs() < 1e-9, "sum = {}", sum);
    }

    /// Tile compression round-trips the sorted edge multiset.
    #[test]
    fn compression_roundtrip(
        edges in proptest::collection::vec((any::<u16>(), any::<u16>()), 0..300)
    ) {
        let mut raw = Vec::with_capacity(edges.len() * 4);
        for (s, d) in &edges {
            raw.extend_from_slice(&s.to_le_bytes());
            raw.extend_from_slice(&d.to_le_bytes());
        }
        let back = decompress_tile(&compress_tile(&raw).unwrap()).unwrap();
        let mut want: Vec<u32> = edges.iter().map(|(s, d)| (*s as u32) << 16 | *d as u32).collect();
        want.sort_unstable();
        let got: Vec<u32> = back
            .chunks_exact(4)
            .map(|c| {
                (u16::from_le_bytes([c[0], c[1]]) as u32) << 16
                    | u16::from_le_bytes([c[2], c[3]]) as u32
            })
            .collect();
        prop_assert_eq!(got, want);
    }

    /// Every bit-level tile codec round-trips the edge multiset, and its
    /// cursor streams exactly the sorted keys of the tile.
    #[test]
    fn codec_roundtrip_is_lossless(
        edges in proptest::collection::vec((any::<u16>(), any::<u16>()), 0..300)
    ) {
        use gstore::tile::Codec;
        let mut raw = Vec::with_capacity(edges.len() * 4);
        for (s, d) in &edges {
            raw.extend_from_slice(&s.to_le_bytes());
            raw.extend_from_slice(&d.to_le_bytes());
        }
        let mut want: Vec<u32> =
            edges.iter().map(|(s, d)| (*s as u32) << 16 | *d as u32).collect();
        want.sort_unstable();
        let key_of = |c: &[u8]| {
            (u16::from_le_bytes([c[0], c[1]]) as u32) << 16
                | u16::from_le_bytes([c[2], c[3]]) as u32
        };
        for codec in Codec::ALL {
            let coded = codec.encode_tile(&raw).unwrap();
            prop_assert_eq!(
                codec.edge_count(&coded).unwrap(),
                edges.len() as u64,
                "{}",
                codec.name()
            );
            // Block decode restores the multiset (sorted for coded
            // streams, original order for raw).
            let mut got: Vec<u32> =
                codec.decode_tile(&coded).unwrap().chunks_exact(4).map(key_of).collect();
            got.sort_unstable();
            prop_assert_eq!(&got, &want, "{} decode_tile", codec.name());
            // The streaming cursor agrees key for key.
            let mut cur = codec.cursor(&coded).unwrap();
            prop_assert_eq!(cur.remaining(), want.len() as u64);
            let mut streamed = Vec::with_capacity(want.len());
            while let Some(k) = cur.next_key() {
                streamed.push(k);
            }
            streamed.sort_unstable();
            prop_assert_eq!(&streamed, &want, "{} cursor", codec.name());
        }
    }

    /// The cache pool never exceeds capacity, never loses a Needed tile to
    /// make room for an Unknown one, and stays consistent.
    #[test]
    fn pool_invariants(
        ops in proptest::collection::vec((0u64..50, 1usize..64, 0u8..3), 1..200),
        capacity in 64u64..512,
    ) {
        let mut pool = CachePool::new(capacity);
        let hint_of = |h: u8| match h {
            0 => CacheHint::NotNeeded,
            1 => CacheHint::Unknown,
            _ => CacheHint::Needed,
        };
        for (tile, size, hint) in ops {
            let h = hint_of(hint);
            let oracle = move |_: u64| h;
            pool.insert(tile, &vec![0u8; size], &oracle);
            prop_assert!(pool.bytes() <= capacity);
            // Internal consistency: resident set matches byte accounting.
            let resident = pool.resident();
            prop_assert_eq!(resident.len(), pool.len());
            for t in resident {
                prop_assert!(pool.contains(t));
                prop_assert!(pool.tile_data(t).is_some());
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The SCR planner partitions the needed tiles exactly: every tile
    /// appears once, in order, either in the rewind set or in a segment,
    /// and no segment exceeds the budget (except a single oversized tile).
    #[test]
    fn planner_partitions_exactly(
        sizes in proptest::collection::vec(0u64..5000, 1..120),
        cached_mask in proptest::collection::vec(any::<bool>(), 120),
        segment in 1024u64..8192,
    ) {
        use gstore::scr::{plan, CacheHint, CachePool, ScrConfig};
        let config = ScrConfig::new(segment, segment * 4).unwrap();
        let mut pool = CachePool::new(u64::MAX);
        let needed: Vec<u64> = (0..sizes.len() as u64).collect();
        for (&t, &cached) in needed.iter().zip(&cached_mask) {
            if cached {
                pool.insert(t, &vec![0u8; sizes[t as usize] as usize], &|_: u64| {
                    CacheHint::Needed
                });
            }
        }
        let p = plan(&config, &needed, &pool, |t| sizes[t as usize]);
        // Exact partition.
        let mut all: Vec<u64> = p.rewind.clone();
        all.extend(p.segments.iter().flatten());
        all.sort_unstable();
        prop_assert_eq!(all, needed.clone());
        // Rewind tiles are exactly the cached ones.
        for t in &p.rewind {
            prop_assert!(pool.contains(*t));
        }
        // Segment budgets.
        for seg in &p.segments {
            let bytes: u64 = seg.iter().map(|&t| sizes[t as usize]).sum();
            prop_assert!(
                bytes <= segment || seg.len() == 1,
                "segment of {} bytes with {} tiles",
                bytes,
                seg.len()
            );
        }
    }

    /// The AIO engine returns every submitted request exactly once with
    /// correct data, for arbitrary interleavings of submit and poll.
    #[test]
    fn aio_exactly_once(
        ops in proptest::collection::vec((0u64..4000, 1usize..128), 1..60),
        workers in 1usize..5,
    ) {
        use gstore::io::{AioEngine, AioRequest, MemBackend};
        use std::sync::Arc;
        let data: Vec<u8> = (0..8192).map(|i| (i % 251) as u8).collect();
        let engine = AioEngine::new(Arc::new(MemBackend::new(data.clone())), workers, 32);
        let mut seen = std::collections::HashMap::new();
        for (i, &(offset, len)) in ops.iter().enumerate() {
            engine.submit(vec![AioRequest { tag: i as u64, offset, len }]);
            if i % 3 == 0 {
                for c in engine.poll(0, 8).expect("workers alive") {
                    seen.insert(c.tag, c.result);
                }
            }
        }
        for c in engine.drain().expect("workers alive") {
            prop_assert!(seen.insert(c.tag, c.result).is_none(), "duplicate tag");
        }
        prop_assert_eq!(seen.len(), ops.len());
        for (i, &(offset, len)) in ops.iter().enumerate() {
            let r = &seen[&(i as u64)];
            if offset as usize + len <= data.len() {
                prop_assert_eq!(
                    r.as_ref().unwrap().as_slice(),
                    &data[offset as usize..offset as usize + len]
                );
            } else {
                prop_assert!(r.is_err());
            }
        }
    }

    /// The buffer pool upholds its invariants for arbitrary interleavings
    /// of acquires, writes and releases: live handles never alias, windows
    /// stay inside sector-aligned capacity, size classes actually reuse
    /// memory, and every buffer is returned once all handles drop.
    #[test]
    fn buffer_pool_invariants(
        ops in proptest::collection::vec((1usize..20_000, any::<bool>()), 1..120),
    ) {
        use gstore::io::{BufferPool, PooledBuf, SECTOR};
        let pool = BufferPool::new();
        let mut held: Vec<PooledBuf> = Vec::new();
        for (len, release) in ops {
            let mut b = pool.acquire(len);
            prop_assert_eq!(b.len(), len);
            prop_assert!(b.capacity() >= len);
            prop_assert_eq!(b.capacity() % SECTOR as usize, 0);
            prop_assert_eq!(b.as_slice().as_ptr() as usize % SECTOR as usize, 0);
            // The handle is writable over its whole window.
            b.as_mut_slice().fill(0xAB);
            held.push(b);
            // No two live handles overlap in memory.
            let spans: Vec<(usize, usize)> = held
                .iter()
                .map(|h| {
                    let p = h.as_slice().as_ptr() as usize;
                    (p, p + h.len())
                })
                .collect();
            for (i, &(lo_a, hi_a)) in spans.iter().enumerate() {
                for &(lo_b, hi_b) in &spans[..i] {
                    prop_assert!(
                        hi_a <= lo_b || hi_b <= lo_a,
                        "live buffers alias: {lo_a}..{hi_a} vs {lo_b}..{hi_b}"
                    );
                }
            }
            if release && !held.is_empty() {
                held.swap_remove(0);
            }
            let s = pool.stats();
            prop_assert_eq!(s.outstanding as usize, held.len());
            prop_assert_eq!(s.hits + s.misses, s.acquires);
        }
        // Dropping every handle returns every buffer to the pool.
        held.clear();
        let s = pool.stats();
        prop_assert_eq!(s.outstanding, 0);
        prop_assert_eq!(s.recycled + s.trimmed, s.acquires);
        // Same-class reacquire after release reuses pooled memory.
        drop(pool.acquire(4096));
        let before = pool.stats().hits;
        drop(pool.acquire(4096));
        prop_assert!(pool.stats().hits > before, "size class failed to reuse");
    }

    /// The SSD array simulator conserves bytes and balances striped load.
    #[test]
    fn sim_conserves_bytes(
        reads in proptest::collection::vec((0u64..(1 << 20) - 4096, 1usize..4096), 1..50),
        devices in 1usize..9,
    ) {
        use gstore::io::{ArrayConfig, MemBackend, SsdArraySim, StorageBackend};
        use std::sync::Arc;
        let sim = SsdArraySim::new(
            Arc::new(MemBackend::new(vec![0u8; 1 << 20])),
            ArrayConfig::new(devices),
        );
        let mut total = 0u64;
        let mut buf = vec![0u8; 4096];
        for &(off, len) in &reads {
            sim.read_at(off, &mut buf[..len]).unwrap();
            total += len as u64;
        }
        let stats = sim.stats();
        prop_assert_eq!(stats.total_bytes, total);
        prop_assert_eq!(stats.device_bytes.len(), devices);
        prop_assert_eq!(stats.device_bytes.iter().sum::<u64>(), total);
        prop_assert!(stats.elapsed > 0.0);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// SNB encoding round-trips every edge for arbitrary tiling shapes:
    /// any vertex count, any tile size, directed or undirected (folded)
    /// grids — both at the edge level and through the byte serialisation.
    #[test]
    fn snb_roundtrip_across_tiling_shapes(
        n in 2u64..10_000,
        tile_bits in 1u32..14,
        directed in any::<bool>(),
        pairs in proptest::collection::vec((0u64..10_000, 0u64..10_000), 0..200),
    ) {
        use gstore::tile::snb;
        let kind = if directed { GraphKind::Directed } else { GraphKind::Undirected };
        let tiling = gstore::tile::Tiling::new(n, tile_bits, kind).unwrap();
        let mut bytes = Vec::new();
        let mut folded_edges = Vec::new();
        for (s, d) in pairs {
            let e = Edge::new(s % n, d % n);
            // tile_of_edge folds symmetric (undirected) edges into the
            // upper triangle; the folded edge is what a tile stores.
            let (coord, folded) = tiling.tile_of_edge(e);
            let enc = snb::encode(&tiling, coord, folded);
            prop_assert_eq!(snb::decode(&tiling, coord, enc), folded);
            // Byte form round-trips too.
            prop_assert_eq!(snb::SnbEdge::from_bytes(enc.to_bytes()), enc);
            snb::push_bytes(&mut bytes, enc);
            folded_edges.push((coord, folded));
        }
        // A whole tile buffer of SNB bytes decodes back in order.
        prop_assert_eq!(snb::edge_count(&bytes), folded_edges.len() as u64);
        for (enc, &(coord, folded)) in
            snb::edges_in(&bytes).unwrap().zip(&folded_edges)
        {
            prop_assert_eq!(snb::decode(&tiling, coord, enc), folded);
        }
        // Truncated buffers are rejected, not mis-decoded.
        if !bytes.is_empty() {
            prop_assert!(snb::edges_in(&bytes[..bytes.len() - 1]).is_err());
        }
    }

    /// The cache pool's arena stays structurally sound under arbitrary
    /// interleavings of insert, analyze (evict + compact) and take_all:
    /// entries tile the arena contiguously, `bytes() <= capacity()`, and
    /// the index matches the entries (checked by `debug_validate`).
    #[test]
    fn pool_arena_invariants_under_churn(
        ops in proptest::collection::vec(
            (0u8..10, 0u64..40, 1usize..96, 0u8..3),
            1..250,
        ),
        capacity in 64u64..768,
    ) {
        let mut pool = CachePool::new(capacity);
        let hint_of = |h: u8| match h {
            0 => CacheHint::NotNeeded,
            1 => CacheHint::Unknown,
            _ => CacheHint::Needed,
        };
        for (op, tile, size, hint) in ops {
            let h = hint_of(hint);
            let oracle = move |t: u64| {
                if t.is_multiple_of(3) {
                    CacheHint::NotNeeded
                } else {
                    h
                }
            };
            match op {
                // Mostly inserts; distinct payload bytes per tile so
                // compaction corruption would be visible.
                0..=7 => {
                    pool.insert(tile, &vec![tile as u8; size], &oracle);
                }
                8 => pool.analyze(&oracle),
                _ => {
                    pool.take_all();
                }
            }
            if let Err(why) = pool.debug_validate() {
                prop_assert!(false, "invariant broken after op {}: {}", op, why);
            }
            prop_assert!(pool.bytes() <= pool.capacity());
            // Surviving tiles keep their own bytes through compaction.
            for t in pool.resident() {
                let data = pool.tile_data(t).unwrap();
                prop_assert!(data.iter().all(|&b| b == t as u8));
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// The column-sharded compute path is a pure performance change: for
    /// every store shape (tile_bits × group side × orientation) on skewed
    /// R-MAT graphs, and with AIO completions arriving in jittered order,
    /// it produces bit-identical BFS/WCC/k-core results and FP-tolerance-
    /// equal PageRank versus the atomic fallback.
    #[test]
    fn sharded_and_atomic_paths_agree(
        seed in 0u64..100,
        tile_bits in 2u32..6,
        q in 1u32..5,
        directed in any::<bool>(),
        jitter in any::<bool>(),
    ) {
        use gstore::core::KCore;
        use gstore::graph::gen::{generate_rmat, RmatParams};
        use gstore::io::JitterBackend;
        use gstore::tile::TileIndex;
        use std::sync::Arc;

        let kind = if directed { GraphKind::Directed } else { GraphKind::Undirected };
        let el = generate_rmat(&RmatParams::kron(7, 4).with_seed(seed).with_kind(kind)).unwrap();
        let store = TileStore::build(
            &el,
            &ConversionOptions::new(tile_bits).with_group_side(q),
        ).unwrap();
        let index = TileIndex::raw(store.layout().clone(), store.encoding(), store.start_edge().to_vec());
        let tiling = *store.layout().tiling();
        let seg = (store.data_bytes() / 3).max(64);
        let make_engine = |sharded: bool| {
            let b = GStoreEngine::builder()
                .scr(ScrConfig::new(seg, seg * 3).unwrap())
                .sharded_updates(sharded);
            let base = Arc::new(MemBackend::new(store.data().to_vec()));
            if jitter {
                let backend = Arc::new(JitterBackend::new(base, 300));
                b.backend(index.clone(), backend).io_workers(4).build().unwrap()
            } else {
                b.backend(index.clone(), base).build().unwrap()
            }
        };

        let mut bfs_s = Bfs::new(tiling, 0);
        make_engine(true).run(&mut bfs_s, 10_000).unwrap();
        let mut bfs_a = Bfs::new(tiling, 0);
        make_engine(false).run(&mut bfs_a, 10_000).unwrap();
        prop_assert_eq!(bfs_s.depths(), bfs_a.depths());

        let mut wcc_s = Wcc::new(tiling);
        let stats = make_engine(true).run(&mut wcc_s, 10_000).unwrap();
        prop_assert_eq!(stats.atomic_edges, 0);
        prop_assert_eq!(stats.sharded_edges, stats.edges_processed);
        let mut wcc_a = Wcc::new(tiling);
        let stats = make_engine(false).run(&mut wcc_a, 10_000).unwrap();
        prop_assert_eq!(stats.sharded_edges, 0);
        prop_assert_eq!(wcc_s.labels(), wcc_a.labels());
        prop_assert_eq!(wcc_s.labels(), gstore::graph::reference::wcc_labels(&el));

        let mut kc_s = KCore::new(tiling, 3);
        make_engine(true).run(&mut kc_s, 10_000).unwrap();
        let mut kc_a = KCore::new(tiling, 3);
        make_engine(false).run(&mut kc_a, 10_000).unwrap();
        prop_assert_eq!(kc_s.membership(), kc_a.membership());

        let deg = gstore::graph::CompactDegrees::from_edge_list(&el).unwrap().to_vec();
        let mut pr_s = PageRank::new(tiling, deg.clone(), 0.85).with_iterations(5);
        make_engine(true).run(&mut pr_s, 5).unwrap();
        let mut pr_a = PageRank::new(tiling, deg, 0.85).with_iterations(5);
        make_engine(false).run(&mut pr_a, 5).unwrap();
        for (s, a) in pr_s.ranks().iter().zip(pr_a.ranks()) {
            prop_assert!((s - a).abs() < 1e-9, "rank {} vs {}", s, a);
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// A shared-scan K-query batch is observably identical to K sequential
    /// runs: for every store shape, orientation, and (jittered) AIO
    /// completion order, each query's result and iteration count come out
    /// of the batch exactly as they do from a solo `run()` — BFS depths,
    /// WCC labels, and k-core membership bitwise, PageRank to FP
    /// tolerance — and the batch's amortization counters reconcile with
    /// its per-query counters.
    #[test]
    fn batch_queries_match_sequential_runs(
        seed in 0u64..100,
        tile_bits in 2u32..6,
        q in 1u32..5,
        directed in any::<bool>(),
        jitter in any::<bool>(),
        root_seed in 0u64..1000,
    ) {
        use gstore::core::KCore;
        use gstore::graph::gen::{generate_rmat, RmatParams};
        use gstore::io::JitterBackend;
        use gstore::tile::TileIndex;
        use std::sync::Arc;

        let kind = if directed { GraphKind::Directed } else { GraphKind::Undirected };
        let el = generate_rmat(&RmatParams::kron(7, 4).with_seed(seed).with_kind(kind)).unwrap();
        let store = TileStore::build(
            &el,
            &ConversionOptions::new(tile_bits).with_group_side(q),
        ).unwrap();
        let index = TileIndex::raw(store.layout().clone(), store.encoding(), store.start_edge().to_vec());
        let tiling = *store.layout().tiling();
        let root = root_seed % el.vertex_count();
        let seg = (store.data_bytes() / 3).max(64);
        let make_engine = || {
            let b = GStoreEngine::builder().scr(ScrConfig::new(seg, seg * 3).unwrap());
            let base = Arc::new(MemBackend::new(store.data().to_vec()));
            if jitter {
                let backend = Arc::new(JitterBackend::new(base, 300));
                b.backend(index.clone(), backend).io_workers(4).build().unwrap()
            } else {
                b.backend(index.clone(), base).build().unwrap()
            }
        };
        let deg = gstore::graph::CompactDegrees::from_edge_list(&el).unwrap().to_vec();

        // Sequential arm: one engine per query.
        let mut bfs_solo = Bfs::new(tiling, root);
        make_engine().run(&mut bfs_solo, 10_000).unwrap();
        let mut wcc_solo = Wcc::new(tiling);
        make_engine().run(&mut wcc_solo, 10_000).unwrap();
        let mut kc_solo = KCore::new(tiling, 2);
        make_engine().run(&mut kc_solo, 10_000).unwrap();
        let mut pr_solo = PageRank::new(tiling, deg.clone(), 0.85).with_iterations(4);
        let pr_stats = make_engine().run(&mut pr_solo, 10_000).unwrap();

        // Batch arm: the same four queries over one shared scan.
        let mut bfs = Bfs::new(tiling, root);
        let mut wcc = Wcc::new(tiling);
        let mut kc = KCore::new(tiling, 2);
        let mut pr = PageRank::new(tiling, deg, 0.85).with_iterations(4);
        let mut batch = QueryBatch::new();
        batch.push(&mut bfs).unwrap();
        batch.push(&mut wcc).unwrap();
        batch.push(&mut kc).unwrap();
        batch.push(&mut pr).unwrap();
        let out = make_engine().run_batch(&mut batch, 10_000).unwrap();

        prop_assert!(out.all_converged());
        prop_assert_eq!(bfs.depths(), bfs_solo.depths());
        prop_assert_eq!(wcc.labels(), wcc_solo.labels());
        prop_assert_eq!(kc.membership(), kc_solo.membership());
        for (b, s) in pr.ranks().iter().zip(pr_solo.ranks()) {
            prop_assert!((b - s).abs() < 1e-9, "rank {} vs {}", b, s);
        }
        // Iteration counts are per query, not per batch. They are only
        // deterministic for fixed-horizon algorithms: WCC/k-core may reach
        // the (unique) fixed point in a scheduling-dependent number of
        // sweeps, because labels written by one shard are visible to
        // concurrently running shards within the same sweep.
        prop_assert_eq!(out.per_query[3].stats.iterations, pr_stats.iterations);
        for outcome in &out.per_query {
            prop_assert!(outcome.stats.iterations > 0);
            prop_assert!(outcome.stats.iterations <= out.sweeps);
        }
        // Counter reconciliation: what queries consumed beyond what the
        // scan fetched is exactly the amortized work.
        let sum_tiles: u64 = out.per_query.iter().map(|o| o.stats.tiles_processed).sum();
        let sum_bytes: u64 = out.per_query.iter().map(|o| o.stats.bytes_read).sum();
        prop_assert_eq!(out.tiles_shared, sum_tiles - out.aggregate.tiles_processed);
        prop_assert_eq!(out.bytes_amortized, sum_bytes - out.aggregate.bytes_read);
        prop_assert!(out.read_amortization() >= 1.0);
    }
}

#[test]
fn batch_survives_mid_run_io_error() {
    // A read failure inside a shared-scan sweep must surface as an error,
    // leave no request in flight and no pooled buffer outstanding, and the
    // same engine must run a fresh batch to the correct fixed point — on
    // both I/O engines. The worker-pool arm injects at the engine level
    // too, so both arms exercise the identical fault surface.
    use gstore::graph::gen::{generate_rmat, RmatParams};
    use gstore::graph::reference;
    use gstore::io::{uring_available, FaultPolicy, IoBackend, IoFaultInjector};

    let el = generate_rmat(&RmatParams::kron(8, 4)).unwrap();
    let store = TileStore::build(&el, &ConversionOptions::new(4).with_group_side(2)).unwrap();
    let tiling = *store.layout().tiling();
    let dir = tempfile::tempdir().unwrap();
    let paths = gstore::tile::write_store(&store, dir.path(), "b").unwrap();
    let seg = (store.data_bytes() / 4).max(256);
    for io_backend in [IoBackend::Workers, IoBackend::Uring] {
        if io_backend == IoBackend::Uring && !uring_available() {
            eprintln!("io_uring unavailable; skipping uring arm");
            continue;
        }
        let fault = IoFaultInjector::new(FaultPolicy::FirstN(1));
        let mut engine = GStoreEngine::builder()
            .paths(&paths)
            .scr(ScrConfig::new(seg, seg * 3).unwrap())
            .io_backend(io_backend)
            .io_fault(fault.clone())
            .build()
            .unwrap();

        let mut bfs = Bfs::new(tiling, 0);
        let mut wcc = Wcc::new(tiling);
        let mut batch = QueryBatch::new();
        batch.push(&mut bfs).unwrap();
        batch.push(&mut wcc).unwrap();
        let err = engine.run_batch(&mut batch, 10_000);
        assert!(
            matches!(err, Err(gstore::graph::GraphError::Io(_))),
            "{io_backend}: {err:?}"
        );
        assert_eq!(fault.injected(), 1, "{io_backend}");
        assert_eq!(
            engine.aio_in_flight(),
            0,
            "{io_backend}: failed batch left I/O in flight"
        );
        let bp = engine.buffer_pool_stats();
        assert_eq!(
            bp.outstanding, 0,
            "{io_backend}: failed batch leaked pooled buffers"
        );

        // The engine stays usable: a fresh batch reaches the reference
        // fixed point (FirstN(1) has spent its fault).
        let mut bfs2 = Bfs::new(tiling, 0);
        let mut wcc2 = Wcc::new(tiling);
        let mut batch2 = QueryBatch::new();
        batch2.push(&mut bfs2).unwrap();
        batch2.push(&mut wcc2).unwrap();
        let out = engine.run_batch(&mut batch2, 10_000).unwrap();
        assert!(out.all_converged(), "{io_backend}");
        assert_eq!(
            bfs2.depths(),
            reference::bfs_levels(&reference::bfs_csr(&el), 0),
            "{io_backend}"
        );
        assert_eq!(wcc2.labels(), reference::wcc_labels(&el), "{io_backend}");
        assert_eq!(engine.buffer_pool_stats().outstanding, 0, "{io_backend}");
    }
}

#[test]
fn selective_bfs_never_misses_frontier_tiles() {
    // Deterministic stress of the selective-I/O logic: path graphs laid
    // out to cross tile boundaries in both directions.
    for span_bits in [1u32, 2, 3] {
        let n = 64u64;
        let mut edges = Vec::new();
        for i in (0..n - 1).rev() {
            edges.push(Edge::new(i + 1, i)); // reversed path: forces column propagation
        }
        let el = EdgeList::new(n, GraphKind::Undirected, edges).unwrap();
        let store = TileStore::build(&el, &ConversionOptions::new(span_bits)).unwrap();
        let seg = (store.data_bytes() / 3).max(64);
        let mut engine = GStoreEngine::builder()
            .store(&store)
            .scr(ScrConfig::new(seg, seg * 3).unwrap())
            .build()
            .unwrap();
        let mut bfs = Bfs::new(*store.layout().tiling(), 0);
        engine.run(&mut bfs, 10_000).unwrap();
        let depths = bfs.depths();
        for (i, d) in depths.iter().enumerate() {
            assert_eq!(*d as usize, i, "span_bits={span_bits}");
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Corrupting any single byte of the on-disk store files must yield a
    /// clean error or a still-consistent store — never a panic.
    #[test]
    fn mutated_store_files_never_panic(pos_seed in any::<u64>(), val in any::<u8>()) {
        use gstore::graph::gen::{generate_rmat, RmatParams};
        let dir = tempfile::tempdir().unwrap();
        let el = generate_rmat(&RmatParams::kron(8, 4)).unwrap();
        let store = TileStore::build(&el, &ConversionOptions::new(4)).unwrap();
        let paths = gstore::tile::write_store(&store, dir.path(), "m").unwrap();

        // Mutate one byte of the start-edge file.
        let mut idx = std::fs::read(&paths.start).unwrap();
        let at = (pos_seed as usize) % idx.len();
        idx[at] ^= val | 1; // guarantee a change
        std::fs::write(&paths.start, &idx).unwrap();
        match gstore::tile::TileFile::open(&paths) {
            Err(_) => {} // rejected: fine
            Ok(tf) => {
                // Accepted: whatever loads must stay internally consistent.
                if let Ok(s) = tf.load_all() {
                    prop_assert_eq!(s.start_edge().len() as u64, s.tile_count() + 1);
                }
            }
        }
    }

    /// Same for binary edge-list files.
    #[test]
    fn mutated_edge_list_files_never_panic(pos_seed in any::<u64>(), val in any::<u8>()) {
        let dir = tempfile::tempdir().unwrap();
        let el = EdgeList::new(
            64,
            GraphKind::Directed,
            (0..63).map(|i| Edge::new(i, i + 1)).collect(),
        )
        .unwrap();
        let path = dir.path().join("m.el");
        el.write_binary(&path, TupleWidth::U32).unwrap();
        let mut bytes = std::fs::read(&path).unwrap();
        let at = (pos_seed as usize) % bytes.len();
        bytes[at] ^= val | 1;
        std::fs::write(&path, &bytes).unwrap();
        let _ = EdgeList::read_binary(&path); // must not panic
    }

    /// And for compressed stores.
    #[test]
    fn mutated_compressed_files_never_panic(pos_seed in any::<u64>(), val in any::<u8>()) {
        use gstore::graph::gen::{generate_rmat, RmatParams};
        let dir = tempfile::tempdir().unwrap();
        let el = generate_rmat(&RmatParams::kron(7, 4)).unwrap();
        let store = TileStore::build(&el, &ConversionOptions::new(4)).unwrap();
        let (paths, _) = gstore::tile::write_compressed(&store, dir.path(), "m").unwrap();
        let mut data = std::fs::read(&paths.ctiles).unwrap();
        if !data.is_empty() {
            let at = (pos_seed as usize) % data.len();
            data[at] ^= val | 1;
            std::fs::write(&paths.ctiles, &data).unwrap();
        }
        if let Ok(mut cf) = gstore::tile::CompressedTileFile::open(&paths) {
            for t in 0..cf.tile_count() {
                let _ = cf.read_tile(t); // Err is fine; panic is not
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Point reads agree with a CSR built from the same edge list, for
    /// every tile geometry, encoding, orientation, cache size, and
    /// (jittered) I/O timing: `neighbors(v)` is the same multiset and
    /// `degree(v)` the same count for every vertex.
    #[test]
    fn point_reads_match_csr_reference(
        el in arb_graph(),
        tile_bits in 1u32..9,
        q in 1u32..6,
        enc_sel in 0u8..3,
        jitter in any::<bool>(),
        cache_kb in 0u64..64,
    ) {
        use gstore::io::JitterBackend;
        use gstore::tile::TileIndex;
        use std::sync::Arc;

        let enc = match enc_sel {
            0 => EdgeEncoding::Snb,
            1 => EdgeEncoding::Tuple8,
            _ => EdgeEncoding::Tuple16,
        };
        let store = TileStore::build(
            &el,
            &ConversionOptions::new(tile_bits).with_group_side(q).with_encoding(enc),
        ).unwrap();
        let index = TileIndex::raw(store.layout().clone(), store.encoding(), store.start_edge().to_vec());
        let base = Arc::new(MemBackend::new(store.data().to_vec()));
        let seg = (store.data_bytes() / 3).max(64);
        let builder = GStoreEngine::builder()
            .scr(ScrConfig::new(seg, seg * 3).unwrap())
            .point_read_cache_bytes(cache_kb << 10);
        let engine = if jitter {
            builder.backend(index, Arc::new(JitterBackend::new(base, 200))).build().unwrap()
        } else {
            builder.backend(index, base).build().unwrap()
        };
        let reader = engine.point_reader();
        // The store serves out-adjacency for directed graphs and the full
        // symmetric adjacency for undirected ones — same as the CSR.
        let csr = Csr::from_edge_list(&el, CsrDirection::Out);
        for v in 0..el.vertex_count() {
            let mut got = reader.neighbors(v).unwrap();
            got.sort_unstable();
            let mut want = csr.neighbors(v).to_vec();
            want.sort_unstable();
            prop_assert_eq!(&got, &want, "neighbors of {}", v);
            prop_assert_eq!(reader.degree(v).unwrap(), csr.degree(v), "degree of {}", v);
        }
        prop_assert_eq!(reader.buffer_stats().outstanding, 0);
    }
}

#[test]
fn point_reads_survive_mid_request_io_error() {
    // A read failure inside a point read must surface as the typed I/O
    // error, leave nothing in flight and no pooled buffer outstanding,
    // and the same reader must answer the retried request correctly — on
    // both I/O engines (point misses take the synchronous path under the
    // worker pool and a private ring under io_uring).
    use gstore::graph::gen::{generate_rmat, RmatParams};
    use gstore::io::{uring_available, FaultPolicy, IoBackend, IoFaultInjector};

    let el = generate_rmat(&RmatParams::kron(8, 4)).unwrap();
    let store = TileStore::build(&el, &ConversionOptions::new(4).with_group_side(2)).unwrap();
    let dir = tempfile::tempdir().unwrap();
    let paths = gstore::tile::write_store(&store, dir.path(), "p").unwrap();
    let seg = (store.data_bytes() / 4).max(256);
    let csr = Csr::from_edge_list(&el, CsrDirection::Out);
    for io_backend in [IoBackend::Workers, IoBackend::Uring] {
        if io_backend == IoBackend::Uring && !uring_available() {
            eprintln!("io_uring unavailable; skipping uring arm");
            continue;
        }
        let fault = IoFaultInjector::new(FaultPolicy::FirstN(1));
        let engine = GStoreEngine::builder()
            .paths(&paths)
            .scr(ScrConfig::new(seg, seg * 3).unwrap())
            .point_read_cache_bytes(1 << 20)
            .io_backend(io_backend)
            .io_fault(fault.clone())
            .build()
            .unwrap();
        let reader = engine.point_reader();
        assert_eq!(reader.io_backend(), io_backend);

        // The worker-pool arm injects nowhere on the point-read path (the
        // injector lives in the AIO workers, which point reads bypass), so
        // only the uring arm sees the fault fire on the first fetch.
        if io_backend == IoBackend::Uring {
            let err = reader.neighbors(0).unwrap_err();
            assert!(matches!(err, gstore::graph::GraphError::Io(_)), "{err:?}");
            assert_eq!(fault.injected(), 1);
            assert_eq!(
                engine.aio_in_flight(),
                0,
                "failed point read left I/O in flight"
            );
            assert_eq!(
                reader.buffer_stats().outstanding,
                0,
                "failed point read leaked buffers"
            );
        }

        // The fault (if any) is spent: the request reads clean and matches
        // the reference adjacency.
        let mut got = reader.neighbors(0).unwrap();
        got.sort_unstable();
        let mut want = csr.neighbors(0).to_vec();
        want.sort_unstable();
        assert_eq!(got, want, "{io_backend}");
        assert_eq!(reader.buffer_stats().outstanding, 0, "{io_backend}");
    }

    // Backend-level injection covers the synchronous (worker-pool) point
    // read path, which reads through `StorageBackend::read_at`.
    use gstore::io::{FaultBackend, FileBackend};
    use gstore::tile::TileIndex;
    use std::sync::Arc;
    let index = TileIndex::raw(
        store.layout().clone(),
        store.encoding(),
        store.start_edge().to_vec(),
    );
    let backend = Arc::new(FaultBackend::new(
        Arc::new(FileBackend::open(&paths.tiles).unwrap()),
        FaultPolicy::FirstN(1),
    ));
    let engine = GStoreEngine::builder()
        .backend(index, backend.clone())
        .scr(ScrConfig::new(seg, seg * 3).unwrap())
        .point_read_cache_bytes(1 << 20)
        .io_backend(IoBackend::Workers)
        .build()
        .unwrap();
    let reader = engine.point_reader();
    let err = reader.neighbors(0).unwrap_err();
    assert!(matches!(err, gstore::graph::GraphError::Io(_)), "{err:?}");
    assert_eq!(backend.injected(), 1);
    assert_eq!(engine.aio_in_flight(), 0);
    assert_eq!(reader.buffer_stats().outstanding, 0);
    let mut got = reader.neighbors(0).unwrap();
    got.sort_unstable();
    let mut want = csr.neighbors(0).to_vec();
    want.sort_unstable();
    assert_eq!(got, want);
    assert_eq!(reader.buffer_stats().outstanding, 0);
}
