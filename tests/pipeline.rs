//! End-to-end integration tests spanning every crate: generate → convert →
//! persist → reopen → process through the full engine (AIO + SCR) on real
//! files, in-memory backends, and the simulated SSD array — always checked
//! against the in-memory reference implementations.

use gstore::graph::gen::{generate_powerlaw, generate_rmat, PowerLawParams, RmatParams};
use gstore::graph::{reference, CompactDegrees};
use gstore::io::{ArrayConfig, FaultBackend, FaultPolicy, SsdArraySim};
use gstore::prelude::*;
use gstore::tile::TileIndex;
use std::sync::Arc;

fn kron(scale: u32, ef: u64, kind: GraphKind) -> EdgeList {
    generate_rmat(&RmatParams::kron(scale, ef).with_kind(kind)).unwrap()
}

fn small(store: &TileStore) -> EngineBuilder {
    let seg = (store.data_bytes() / 6).max(1024);
    GStoreEngine::builder()
        .store(store)
        .scr(ScrConfig::new(seg, seg * 2 + store.data_bytes() / 3 + 512).unwrap())
}

fn index_of(store: &TileStore) -> TileIndex {
    TileIndex::raw(
        store.layout().clone(),
        store.encoding(),
        store.start_edge().to_vec(),
    )
}

#[test]
fn file_backed_pipeline_all_algorithms() {
    let dir = tempfile::tempdir().unwrap();
    let el = kron(10, 8, GraphKind::Undirected);
    let store = TileStore::build(&el, &ConversionOptions::new(5).with_group_side(4)).unwrap();
    let paths = gstore::tile::write_store(&store, dir.path(), "g").unwrap();
    let tiling = *store.layout().tiling();

    let mut engine = small(&store).paths(&paths).build().unwrap();

    // BFS
    let mut bfs = Bfs::new(tiling, 3);
    let stats = engine.run(&mut bfs, 10_000).unwrap();
    assert_eq!(
        bfs.depths(),
        reference::bfs_levels(&reference::bfs_csr(&el), 3)
    );
    assert!(stats.bytes_read > 0);

    // PageRank (fresh engine cache to make runs independent)
    engine.clear_cache();
    let deg = CompactDegrees::from_edge_list(&el).unwrap().to_vec();
    let mut pr = PageRank::new(tiling, deg, 0.85).with_iterations(12);
    engine.run(&mut pr, 12).unwrap();
    let csr = Csr::from_edge_list(&el, CsrDirection::Out);
    let want = reference::pagerank(&csr, 12, 0.85);
    for (a, b) in pr.ranks().iter().zip(&want) {
        assert!((a - b).abs() < 1e-9);
    }

    // WCC
    engine.clear_cache();
    let mut wcc = Wcc::new(tiling);
    engine.run(&mut wcc, 10_000).unwrap();
    assert_eq!(wcc.labels(), reference::wcc_labels(&el));
}

#[test]
fn simulated_ssd_array_pipeline() {
    let el = kron(10, 6, GraphKind::Directed);
    let store = TileStore::build(&el, &ConversionOptions::new(6).with_group_side(2)).unwrap();
    let sim = Arc::new(SsdArraySim::new(
        Arc::new(MemBackend::new(store.data().to_vec())),
        ArrayConfig::new(4),
    ));
    let backend: Arc<dyn StorageBackend> = sim.clone();
    let mut engine = small(&store)
        .backend(index_of(&store), backend)
        .build()
        .unwrap();
    let mut bfs = Bfs::new(*store.layout().tiling(), 0);
    engine.run(&mut bfs, 10_000).unwrap();
    assert_eq!(
        bfs.depths(),
        reference::bfs_levels(&reference::bfs_csr(&el), 0)
    );
    // The array model observed real traffic, balanced across devices.
    let s = sim.stats();
    assert!(s.total_bytes > 0);
    assert!(s.elapsed > 0.0);
}

#[test]
fn fault_injection_surfaces_errors_without_panic() {
    let el = kron(9, 6, GraphKind::Undirected);
    let store = TileStore::build(&el, &ConversionOptions::new(5)).unwrap();
    for policy in [FaultPolicy::EveryNth(2), FaultPolicy::FirstN(1)] {
        let backend = Arc::new(FaultBackend::new(
            Arc::new(MemBackend::new(store.data().to_vec())),
            policy,
        ));
        let mut engine = small(&store)
            .backend(index_of(&store), backend)
            .build()
            .unwrap();
        let mut wcc = Wcc::new(*store.layout().tiling());
        assert!(engine.run(&mut wcc, 100).is_err());
    }
}

#[test]
fn corrupted_files_rejected_at_open() {
    let dir = tempfile::tempdir().unwrap();
    let el = kron(9, 4, GraphKind::Undirected);
    let store = TileStore::build(&el, &ConversionOptions::new(5)).unwrap();
    let paths = gstore::tile::write_store(&store, dir.path(), "g").unwrap();

    // Truncate the data file.
    let bytes = std::fs::read(&paths.tiles).unwrap();
    std::fs::write(&paths.tiles, &bytes[..bytes.len() / 2]).unwrap();
    assert!(small(&store).paths(&paths).build().is_err());

    // Corrupt the start-edge magic.
    std::fs::write(&paths.tiles, &bytes).unwrap();
    let mut idx = std::fs::read(&paths.start).unwrap();
    idx[0] ^= 0xFF;
    std::fs::write(&paths.start, &idx).unwrap();
    assert!(small(&store).paths(&paths).build().is_err());
}

#[test]
fn power_law_graph_through_pipeline() {
    let mut params = PowerLawParams::twitter_like(20_000);
    params.kind = GraphKind::Directed;
    let el = generate_powerlaw(&params).unwrap();
    let store = TileStore::build(&el, &ConversionOptions::new(8).with_group_side(2)).unwrap();
    let mut engine = small(&store).build().unwrap();
    let mut wcc = Wcc::new(*store.layout().tiling());
    engine.run(&mut wcc, 10_000).unwrap();
    assert_eq!(wcc.labels(), reference::wcc_labels(&el));
}

#[test]
fn tuple_encoded_stores_run_identically() {
    // The engine is encoding-agnostic: the Figure 10 ablation formats must
    // produce identical algorithm results.
    let el = kron(9, 6, GraphKind::Undirected);
    let mut depths = Vec::new();
    for (enc, sym) in [
        (EdgeEncoding::Snb, true),
        (EdgeEncoding::Tuple8, true),
        (EdgeEncoding::Tuple8, false),
        (EdgeEncoding::Tuple16, false),
    ] {
        let mut opts = ConversionOptions::new(5)
            .with_group_side(4)
            .with_encoding(enc);
        if !sym {
            opts = opts.without_symmetry();
        }
        let store = TileStore::build(&el, &opts).unwrap();
        let mut engine = small(&store).build().unwrap();
        let mut bfs = Bfs::new(*store.layout().tiling(), 0);
        engine.run(&mut bfs, 10_000).unwrap();
        depths.push(bfs.depths());
    }
    assert!(depths.windows(2).all(|w| w[0] == w[1]));
    assert_eq!(
        depths[0],
        reference::bfs_levels(&reference::bfs_csr(&el), 0)
    );
}

#[test]
fn compressed_store_runs_identically() {
    // Future-work path: compress on disk, decompress, run — results must
    // match the uncompressed store exactly.
    let dir = tempfile::tempdir().unwrap();
    let el = kron(10, 6, GraphKind::Undirected);
    let store = TileStore::build(&el, &ConversionOptions::new(5).with_group_side(4)).unwrap();
    let (cpaths, report) = gstore::tile::write_compressed(&store, dir.path(), "c").unwrap();
    assert!(report.ratio() > 1.0);
    let restored = gstore::tile::CompressedTileFile::open(&cpaths)
        .unwrap()
        .load_all()
        .unwrap();
    let mut engine = small(&restored).build().unwrap();
    let mut bfs = Bfs::new(*restored.layout().tiling(), 0);
    engine.run(&mut bfs, 10_000).unwrap();
    assert_eq!(
        bfs.depths(),
        reference::bfs_levels(&reference::bfs_csr(&el), 0)
    );
    let mut wcc = Wcc::new(*restored.layout().tiling());
    engine.clear_cache();
    engine.run(&mut wcc, 10_000).unwrap();
    assert_eq!(wcc.labels(), reference::wcc_labels(&el));
}

#[test]
fn tiered_backend_runs_identically() {
    use gstore::io::{hdd_array, TieredBackend};
    let el = kron(9, 6, GraphKind::Undirected);
    let store = TileStore::build(&el, &ConversionOptions::new(5)).unwrap();
    let ssd = Arc::new(SsdArraySim::new(
        Arc::new(MemBackend::new(store.data().to_vec())),
        ArrayConfig::new(2),
    ));
    let hdd = Arc::new(SsdArraySim::new(
        Arc::new(MemBackend::new(store.data().to_vec())),
        hdd_array(1),
    ));
    let tiered: Arc<dyn StorageBackend> =
        Arc::new(TieredBackend::new(ssd.clone(), hdd.clone(), store.data_bytes() / 3).unwrap());
    let mut engine = small(&store)
        .backend(index_of(&store), tiered)
        .build()
        .unwrap();
    let mut bfs = Bfs::new(*store.layout().tiling(), 0);
    engine.run(&mut bfs, 10_000).unwrap();
    assert_eq!(
        bfs.depths(),
        reference::bfs_levels(&reference::bfs_csr(&el), 0)
    );
    // Both tiers actually served traffic.
    assert!(ssd.stats().total_bytes > 0);
    assert!(hdd.stats().total_bytes > 0);
}

#[test]
fn multiple_roots_and_reruns_share_engine() {
    let el = kron(9, 8, GraphKind::Undirected);
    let store = TileStore::build(&el, &ConversionOptions::new(5)).unwrap();
    let mut engine = small(&store).build().unwrap();
    let csr = reference::bfs_csr(&el);
    for root in [0u64, 1, 100, 511] {
        let mut bfs = Bfs::new(*store.layout().tiling(), root);
        engine.run(&mut bfs, 10_000).unwrap();
        assert_eq!(
            bfs.depths(),
            reference::bfs_levels(&csr, root),
            "root {root}"
        );
    }
}

#[test]
fn degree_then_pagerank_bootstrap_from_disk_only() {
    // A downstream user has only the two files on disk; degrees must be
    // derivable from the store itself.
    let dir = tempfile::tempdir().unwrap();
    let el = kron(9, 6, GraphKind::Directed);
    let store = TileStore::build(&el, &ConversionOptions::new(5)).unwrap();
    let paths = gstore::tile::write_store(&store, dir.path(), "g").unwrap();
    drop(store);

    let opened = gstore::tile::TileFile::open(&paths).unwrap();
    let tiling = *opened.index().layout.tiling();
    let store = opened.load_all().unwrap();
    let mut engine = small(&store).build().unwrap();
    let mut dc = DegreeCount::new(tiling);
    engine.run(&mut dc, 1).unwrap();
    let mut pr = PageRank::new(tiling, dc.degrees(), 0.85).with_iterations(8);
    engine.run(&mut pr, 8).unwrap();
    let csr = Csr::from_edge_list(&el, CsrDirection::Out);
    let want = reference::pagerank(&csr, 8, 0.85);
    for (a, b) in pr.ranks().iter().zip(&want) {
        assert!((a - b).abs() < 1e-9);
    }
}

#[test]
fn streaming_conversion_survives_write_faults() {
    // An injected pwrite failure mid-pass-2 must surface as a typed error,
    // leak no pooled buffers, and leave the paths retryable in place
    // (truncate-and-rewrite).
    let dir = tempfile::tempdir().unwrap();
    let el = kron(9, 8, GraphKind::Undirected);
    let edge_path = dir.path().join("g.el");
    el.write_binary(&edge_path, TupleWidth::U32).unwrap();
    let paths = TilePaths::new(dir.path(), "g");
    let pool = gstore::io::BufferPool::new();
    let opts = StreamingOptions::new(ConversionOptions::new(5).with_group_side(4))
        .with_chunk_edges(512)
        .with_pool(pool.clone());

    let inner = Arc::new(gstore::io::FileWriteBackend::create(&paths.tiles, false).unwrap());
    let faulty = Arc::new(gstore::io::FaultWriteBackend::new(
        inner,
        FaultPolicy::FirstN(1),
    ));
    let err =
        gstore::tile::convert_streaming_to(&edge_path, faulty.clone(), &paths, &opts).unwrap_err();
    assert!(
        matches!(err, gstore::graph::GraphError::Io(_)),
        "want typed I/O error, got {err:?}"
    );
    assert!(faulty.injected() >= 1, "fault never fired");
    assert_eq!(pool.outstanding(), 0, "failed run leaked pooled buffers");

    // Retry on the same paths succeeds and matches the in-memory converter.
    let report = gstore::tile::convert_streaming(&edge_path, dir.path(), "g", &opts).unwrap();
    let store = gstore::tile::convert(&el, &opts.convert).unwrap();
    assert_eq!(std::fs::read(&report.paths.tiles).unwrap(), store.data());
    assert_eq!(pool.outstanding(), 0);
}
