//! Raw-vs-coded equivalence: every query path — full sweeps, shared-scan
//! batches, and point reads — must be observably identical over a
//! bit-coded store and the raw store it encodes, including under
//! adversarial AIO completion timing (`JitterBackend`), and must leak no
//! pooled buffers.

use gstore::graph::gen::{generate_rmat, RmatParams};
use gstore::graph::CompactDegrees;
use gstore::io::JitterBackend;
use gstore::prelude::*;
use gstore::tile::{encode_store, Codec};
use std::sync::Arc;

fn fixture() -> (EdgeList, TileStore) {
    let el = generate_rmat(&RmatParams::kron(8, 4)).unwrap();
    let store = TileStore::build(&el, &ConversionOptions::new(4).with_group_side(2)).unwrap();
    (el, store)
}

/// Engine over `store` re-encoded with `codec`, served through a
/// jittered backend so completion reordering is exercised too.
fn engine_for(store: &TileStore, codec: Codec) -> GStoreEngine {
    let (index, data) = encode_store(store, codec).unwrap();
    let backend = Arc::new(JitterBackend::new(Arc::new(MemBackend::new(data)), 300));
    let seg = (store.data_bytes() / 4).max(256);
    GStoreEngine::builder()
        .scr(ScrConfig::new(seg, seg * 3).unwrap())
        .point_read_cache_bytes(1 << 16)
        .backend(index, backend)
        .io_workers(4)
        .build()
        .unwrap()
}

#[test]
fn compressed_sweeps_match_raw() {
    let (el, store) = fixture();
    let tiling = *store.layout().tiling();
    let deg = CompactDegrees::from_edge_list(&el).unwrap().to_vec();

    let mut bfs_raw = Bfs::new(tiling, 0);
    engine_for(&store, Codec::RawSnb)
        .run(&mut bfs_raw, 10_000)
        .unwrap();
    let mut wcc_raw = Wcc::new(tiling);
    engine_for(&store, Codec::RawSnb)
        .run(&mut wcc_raw, 10_000)
        .unwrap();
    let mut pr_raw = PageRank::new(tiling, deg.clone(), 0.85).with_iterations(5);
    engine_for(&store, Codec::RawSnb)
        .run(&mut pr_raw, 5)
        .unwrap();

    for codec in Codec::CODED {
        let mut bfs = Bfs::new(tiling, 0);
        let mut engine = engine_for(&store, codec);
        engine.run(&mut bfs, 10_000).unwrap();
        assert_eq!(bfs.depths(), bfs_raw.depths(), "{} bfs", codec.name());

        let mut wcc = Wcc::new(tiling);
        engine.run(&mut wcc, 10_000).unwrap();
        assert_eq!(wcc.labels(), wcc_raw.labels(), "{} wcc", codec.name());

        let mut pr = PageRank::new(tiling, deg.clone(), 0.85).with_iterations(5);
        engine.run(&mut pr, 5).unwrap();
        for (c, r) in pr.ranks().iter().zip(pr_raw.ranks()) {
            assert!((c - r).abs() < 1e-9, "{}: rank {c} vs {r}", codec.name());
        }

        assert_eq!(engine.aio_in_flight(), 0, "{}", codec.name());
        assert_eq!(
            engine.buffer_pool_stats().outstanding,
            0,
            "{} leaked buffers",
            codec.name()
        );
    }
}

#[test]
fn compressed_batches_match_raw() {
    let (el, store) = fixture();
    let tiling = *store.layout().tiling();
    let deg = CompactDegrees::from_edge_list(&el).unwrap().to_vec();

    let mut bfs_raw = Bfs::new(tiling, 0);
    engine_for(&store, Codec::RawSnb)
        .run(&mut bfs_raw, 10_000)
        .unwrap();
    let mut wcc_raw = Wcc::new(tiling);
    engine_for(&store, Codec::RawSnb)
        .run(&mut wcc_raw, 10_000)
        .unwrap();
    let mut pr_raw = PageRank::new(tiling, deg.clone(), 0.85).with_iterations(4);
    engine_for(&store, Codec::RawSnb)
        .run(&mut pr_raw, 4)
        .unwrap();

    for codec in Codec::CODED {
        let mut bfs = Bfs::new(tiling, 0);
        let mut wcc = Wcc::new(tiling);
        let mut pr = PageRank::new(tiling, deg.clone(), 0.85).with_iterations(4);
        let mut batch = QueryBatch::new();
        batch.push(&mut bfs).unwrap();
        batch.push(&mut wcc).unwrap();
        batch.push(&mut pr).unwrap();
        let mut engine = engine_for(&store, codec);
        let out = engine.run_batch(&mut batch, 10_000).unwrap();
        assert!(out.all_converged(), "{}", codec.name());
        assert_eq!(bfs.depths(), bfs_raw.depths(), "{} bfs", codec.name());
        assert_eq!(wcc.labels(), wcc_raw.labels(), "{} wcc", codec.name());
        for (c, r) in pr.ranks().iter().zip(pr_raw.ranks()) {
            assert!((c - r).abs() < 1e-9, "{}: rank {c} vs {r}", codec.name());
        }
        assert_eq!(
            engine.buffer_pool_stats().outstanding,
            0,
            "{}",
            codec.name()
        );
    }
}

#[test]
fn compressed_point_reads_match_raw() {
    let (el, store) = fixture();
    let csr = Csr::from_edge_list(&el, CsrDirection::Out);
    for codec in Codec::CODED {
        let engine = engine_for(&store, codec);
        let reader = engine.point_reader();
        for v in 0..el.vertex_count() {
            let mut got = reader.neighbors(v).unwrap();
            got.sort_unstable();
            let mut want = csr.neighbors(v).to_vec();
            want.sort_unstable();
            assert_eq!(got, want, "{}: neighbors of {v}", codec.name());
            assert_eq!(
                reader.degree(v).unwrap(),
                csr.degree(v),
                "{}: degree of {v}",
                codec.name()
            );
        }
        assert_eq!(
            reader.buffer_stats().outstanding,
            0,
            "{} leaked buffers",
            codec.name()
        );
    }
}

#[test]
fn coded_engines_report_codec_metrics() {
    // The flight recorder's codec group must see every decoded tile and
    // reconcile disk vs logical volume with the index's own accounting.
    let (el, store) = fixture();
    let tiling = *store.layout().tiling();
    let deg = CompactDegrees::from_edge_list(&el).unwrap().to_vec();
    let (index, data) = encode_store(&store, Codec::ZetaGap).unwrap();
    let seg = (store.data_bytes() / 4).max(256);
    let mut engine = GStoreEngine::builder()
        .scr(ScrConfig::new(seg, seg * 3).unwrap())
        .metrics(true)
        .backend(index, Arc::new(MemBackend::new(data)))
        .build()
        .unwrap();
    let mut pr = PageRank::new(tiling, deg, 0.85).with_iterations(3);
    engine.run(&mut pr, 3).unwrap();
    let m = engine.metrics().unwrap();
    assert!(m.codec.tiles_decoded > 0);
    assert!(m.codec.disk_bytes > 0);
    assert!(m.codec.logical_bytes > m.codec.disk_bytes);
    assert!(m.codec.compression_ratio() > 1.0);
}
