//! Pins the public API surface: the prelude's exports, the builder's
//! validation contract, and the equivalence of the builder's three source
//! spellings (`paths` / `store` / `backend`) — the deprecated
//! `EngineConfig::new` + `with_*` / `GStoreEngine::new`/`open`/`from_store`
//! shims are gone, so `builder()` is the only construction path.

// If anything is removed from (or renamed in) the prelude, this explicit
// import list stops compiling — the prelude is a compatibility surface,
// so shrinking it is a breaking change that must be deliberate.
#[rustfmt::skip]
use gstore::prelude::{
    // Engine + algorithms (gstore-core).
    Algorithm, AsyncBfs, BatchRunStats, Bfs, DegreeCount, EngineBuilder, EngineConfig,
    GStoreEngine, IterationOutcome, KCore, PageRank, PageRankDelta, QueryBatch, QueryKind,
    QueryOutcome, QuerySpec, QueryValue, RunStats, SpMV, SweepQuery, TileView, Wcc,
    // Graph primitives (gstore-graph).
    Csr, CsrDirection, Edge, EdgeList, GraphKind, GraphMeta, TupleWidth, VertexId,
    // Storage (gstore-io).
    FileBackend, MemBackend, SsdArraySim, StorageBackend,
    // Memory policy (gstore-scr).
    ScrConfig,
    // Tile format (gstore-tile).
    ConversionOptions, EdgeEncoding, TileCoord, TilePaths, TileStore, Tiling,
};

use gstore::graph::gen::{generate_rmat, RmatParams};
use gstore::graph::GraphError;
use std::sync::Arc;

fn small_store() -> TileStore {
    let el = generate_rmat(&RmatParams::kron(8, 4)).unwrap();
    TileStore::build(&el, &ConversionOptions::new(4).with_group_side(2)).unwrap()
}

fn scr_for(store: &TileStore) -> ScrConfig {
    let seg = (store.data_bytes() / 4).max(256);
    ScrConfig::new(seg, seg * 3).unwrap()
}

/// Every prelude type is nameable in a signature (catches accidental
/// re-export of private or renamed items at compile time).
#[allow(dead_code, clippy::too_many_arguments, clippy::type_complexity)]
fn prelude_types_are_nameable(
    _: (&EngineBuilder, &EngineConfig, &GStoreEngine),
    _: (&dyn Algorithm, &RunStats, &IterationOutcome, &TileView),
    _: (&QueryBatch, &QueryOutcome, &BatchRunStats),
    _: (&QuerySpec, &QueryKind, &QueryValue, &SweepQuery),
    _: (
        &Bfs,
        &AsyncBfs,
        &Wcc,
        &PageRank,
        &PageRankDelta,
        &KCore,
        &DegreeCount,
        &SpMV,
    ),
    _: (
        &Csr,
        &CsrDirection,
        &Edge,
        &EdgeList,
        &GraphKind,
        &GraphMeta,
        &TupleWidth,
        &VertexId,
    ),
    _: (&FileBackend, &MemBackend, &SsdArraySim, &dyn StorageBackend),
    _: (
        &ScrConfig,
        &ConversionOptions,
        &EdgeEncoding,
        &TileCoord,
        &TilePaths,
        &TileStore,
        &Tiling,
    ),
) {
}

#[test]
fn builder_rejects_incomplete_configuration() {
    let store = small_store();
    let is_invalid = |r: Result<GStoreEngine, GraphError>| {
        matches!(r.err(), Some(GraphError::InvalidParameter(_)))
    };
    // No source.
    assert!(is_invalid(
        GStoreEngine::builder().scr(scr_for(&store)).build()
    ));
    // No memory policy.
    assert!(is_invalid(GStoreEngine::builder().store(&store).build()));
    // Zero I/O workers.
    assert!(is_invalid(
        GStoreEngine::builder()
            .store(&store)
            .scr(scr_for(&store))
            .io_workers(0)
            .build()
    ));
}

/// The builder's three source spellings — on-disk `paths`, in-memory
/// `store`, and an explicit `backend` — construct engines that behave
/// identically over the same graph. This replaces the old shim-equivalence
/// tests: the sources are the surface now, not the constructors.
#[test]
fn builder_sources_are_equivalent() {
    let store = small_store();
    let tiling = *store.layout().tiling();

    let dir = tempfile::tempdir().unwrap();
    let paths = gstore::tile::write_store(&store, dir.path(), "api").unwrap();
    let index = gstore::tile::TileIndex::raw(
        store.layout().clone(),
        store.encoding(),
        store.start_edge().to_vec(),
    );
    let backend: Arc<dyn StorageBackend> = Arc::new(MemBackend::new(store.data().to_vec()));

    let mut via_paths = GStoreEngine::builder()
        .paths(&paths)
        .scr(scr_for(&store))
        .build()
        .unwrap();
    let mut via_store = GStoreEngine::builder()
        .store(&store)
        .scr(scr_for(&store))
        .build()
        .unwrap();
    let mut via_backend = GStoreEngine::builder()
        .backend(index, backend)
        .scr(scr_for(&store))
        .build()
        .unwrap();

    let mut depths = Vec::new();
    let mut stats = Vec::new();
    for engine in [&mut via_paths, &mut via_store, &mut via_backend] {
        let mut bfs = Bfs::new(tiling, 0);
        stats.push(engine.run(&mut bfs, 1000).unwrap());
        depths.push(bfs.depths());
    }
    assert_eq!(depths[0], depths[1]);
    assert_eq!(depths[1], depths[2]);
    assert_eq!(stats[0].iterations, stats[1].iterations);
    assert_eq!(stats[0].bytes_read, stats[1].bytes_read);
    assert_eq!(stats[1].bytes_read, stats[2].bytes_read);
    assert_eq!(stats[0].edges_processed, stats[2].edges_processed);
}

/// `EngineConfig` survives as the builder's plain-data output; the knob
/// spellings live on the builder and really take effect.
#[test]
fn builder_knobs_take_effect() {
    let store = small_store();
    let tiling = *store.layout().tiling();
    let total = store.data_bytes() + 4096;

    let mut base = GStoreEngine::builder()
        .store(&store)
        .base_policy(total)
        .selective_io(false)
        .sharded_updates(false)
        .metrics(true)
        .build()
        .unwrap();
    let mut bfs = Bfs::new(tiling, 0);
    let stats = base.run(&mut bfs, 1000).unwrap();
    // The sharded path really is off, and the recorder really is on.
    assert_eq!(stats.sharded_edges, 0);
    assert!(base.metrics().is_some());

    let mut plain = GStoreEngine::builder()
        .store(&store)
        .scr(scr_for(&store))
        .build()
        .unwrap();
    let mut bfs2 = Bfs::new(tiling, 0);
    plain.run(&mut bfs2, 1000).unwrap();
    assert_eq!(bfs.depths(), bfs2.depths());
    assert!(plain.metrics().is_none());
}

/// The typed query surface: specs round-trip through text, classify
/// themselves, and build runnable algorithms — the single grammar behind
/// `gstore batch`, `gstore query`, and the serve wire protocol.
#[test]
fn query_spec_surface() {
    let store = small_store();
    let tiling = *store.layout().tiling();

    let sweep: QuerySpec = "bfs:0".parse().unwrap();
    assert_eq!(sweep.kind(), QueryKind::Sweep);
    assert_eq!(sweep.to_string(), "bfs:0");
    let mut engine = GStoreEngine::builder()
        .store(&store)
        .scr(scr_for(&store))
        .build()
        .unwrap();
    let mut query = SweepQuery::new(&sweep, tiling, None).unwrap();
    engine.run(query.algorithm_mut(), 1000).unwrap();
    let value = query.result();
    assert_eq!(QueryValue::decode(&value.encode()).unwrap(), value);

    let point: QuerySpec = "degree:0".parse().unwrap();
    assert_eq!(point.kind(), QueryKind::Point);
    let reader = engine.point_reader();
    let got = gstore::core::spec::run_point(&reader, &point, 42).unwrap();
    assert!(matches!(got, QueryValue::Degree(_)));

    assert!(matches!(
        "bogus".parse::<QuerySpec>(),
        Err(GraphError::InvalidParameter(_))
    ));
}
