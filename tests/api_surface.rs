//! Pins the public API surface: the prelude's exports, the builder's
//! validation contract, and the equivalence of the deprecated
//! `EngineConfig` constructors with the `GStoreEngine::builder()` path
//! they forward to.

// If anything is removed from (or renamed in) the prelude, this explicit
// import list stops compiling — the prelude is a compatibility surface,
// so shrinking it is a breaking change that must be deliberate.
#[rustfmt::skip]
use gstore::prelude::{
    // Engine + algorithms (gstore-core).
    Algorithm, AsyncBfs, BatchRunStats, Bfs, DegreeCount, EngineBuilder, EngineConfig,
    GStoreEngine, IterationOutcome, KCore, PageRank, PageRankDelta, QueryBatch, QueryOutcome,
    RunStats, SpMV, TileView, Wcc,
    // Graph primitives (gstore-graph).
    Csr, CsrDirection, Edge, EdgeList, GraphKind, GraphMeta, TupleWidth, VertexId,
    // Storage (gstore-io).
    FileBackend, MemBackend, SsdArraySim, StorageBackend,
    // Memory policy (gstore-scr).
    ScrConfig,
    // Tile format (gstore-tile).
    ConversionOptions, EdgeEncoding, TileCoord, TilePaths, TileStore, Tiling,
};

use gstore::graph::gen::{generate_rmat, RmatParams};
use gstore::graph::GraphError;
use std::sync::Arc;

fn small_store() -> TileStore {
    let el = generate_rmat(&RmatParams::kron(8, 4)).unwrap();
    TileStore::build(&el, &ConversionOptions::new(4).with_group_side(2)).unwrap()
}

fn scr_for(store: &TileStore) -> ScrConfig {
    let seg = (store.data_bytes() / 4).max(256);
    ScrConfig::new(seg, seg * 3).unwrap()
}

/// Every prelude type is nameable in a signature (catches accidental
/// re-export of private or renamed items at compile time).
#[allow(dead_code, clippy::too_many_arguments, clippy::type_complexity)]
fn prelude_types_are_nameable(
    _: (&EngineBuilder, &EngineConfig, &GStoreEngine),
    _: (&dyn Algorithm, &RunStats, &IterationOutcome, &TileView),
    _: (&QueryBatch, &QueryOutcome, &BatchRunStats),
    _: (
        &Bfs,
        &AsyncBfs,
        &Wcc,
        &PageRank,
        &PageRankDelta,
        &KCore,
        &DegreeCount,
        &SpMV,
    ),
    _: (
        &Csr,
        &CsrDirection,
        &Edge,
        &EdgeList,
        &GraphKind,
        &GraphMeta,
        &TupleWidth,
        &VertexId,
    ),
    _: (&FileBackend, &MemBackend, &SsdArraySim, &dyn StorageBackend),
    _: (
        &ScrConfig,
        &ConversionOptions,
        &EdgeEncoding,
        &TileCoord,
        &TilePaths,
        &TileStore,
        &Tiling,
    ),
) {
}

#[test]
fn builder_rejects_incomplete_configuration() {
    let store = small_store();
    let is_invalid = |r: Result<GStoreEngine, GraphError>| {
        matches!(r.err(), Some(GraphError::InvalidParameter(_)))
    };
    // No source.
    assert!(is_invalid(
        GStoreEngine::builder().scr(scr_for(&store)).build()
    ));
    // No memory policy.
    assert!(is_invalid(GStoreEngine::builder().store(&store).build()));
    // Zero I/O workers.
    assert!(is_invalid(
        GStoreEngine::builder()
            .store(&store)
            .scr(scr_for(&store))
            .io_workers(0)
            .build()
    ));
}

/// The deprecated `EngineConfig` + constructor trio must keep working and
/// produce an engine that behaves identically to the builder path — the
/// shims forward to the same construction.
#[test]
#[allow(deprecated)]
fn deprecated_constructors_match_builder() {
    let el = generate_rmat(&RmatParams::kron(8, 4)).unwrap();
    let store = TileStore::build(&el, &ConversionOptions::new(4).with_group_side(2)).unwrap();
    let tiling = *store.layout().tiling();

    let config = EngineConfig::new(scr_for(&store))
        .with_io_workers(2)
        .with_metrics();
    let mut old = GStoreEngine::from_store(&store, config).unwrap();
    let mut new = GStoreEngine::builder()
        .store(&store)
        .scr(scr_for(&store))
        .io_workers(2)
        .metrics(true)
        .build()
        .unwrap();

    let mut wcc_old = Wcc::new(tiling);
    let stats_old = old.run(&mut wcc_old, 1000).unwrap();
    let mut wcc_new = Wcc::new(tiling);
    let stats_new = new.run(&mut wcc_new, 1000).unwrap();
    assert_eq!(wcc_old.labels(), wcc_new.labels());
    assert_eq!(stats_old.iterations, stats_new.iterations);
    assert_eq!(stats_old.bytes_read, stats_new.bytes_read);
    assert_eq!(stats_old.tiles_processed, stats_new.tiles_processed);
    assert_eq!(stats_old.edges_processed, stats_new.edges_processed);
    // Both engines were really instrumented.
    assert!(old.metrics().is_some() && new.metrics().is_some());
}

/// `GStoreEngine::new` (explicit backend) and `open` (file paths) shims
/// forward to the builder equivalents.
#[test]
#[allow(deprecated)]
fn deprecated_engine_trio_still_works() {
    let el = generate_rmat(&RmatParams::kron(8, 4)).unwrap();
    let store = TileStore::build(&el, &ConversionOptions::new(4)).unwrap();
    let tiling = *store.layout().tiling();
    let index = gstore::tile::TileIndex::raw(
        store.layout().clone(),
        store.encoding(),
        store.start_edge().to_vec(),
    );
    let backend: Arc<dyn StorageBackend> = Arc::new(MemBackend::new(store.data().to_vec()));
    let mut via_new =
        GStoreEngine::new(index, backend, EngineConfig::new(scr_for(&store))).unwrap();

    let dir = tempfile::tempdir().unwrap();
    let paths = gstore::tile::write_store(&store, dir.path(), "api").unwrap();
    let mut via_open = GStoreEngine::open(&paths, EngineConfig::new(scr_for(&store))).unwrap();

    let mut bfs_a = Bfs::new(tiling, 0);
    via_new.run(&mut bfs_a, 1000).unwrap();
    let mut bfs_b = Bfs::new(tiling, 0);
    via_open.run(&mut bfs_b, 1000).unwrap();
    assert_eq!(bfs_a.depths(), bfs_b.depths());
}

/// The deprecated base-policy and feature-toggle spellings agree with the
/// builder's.
#[test]
#[allow(deprecated)]
fn deprecated_toggles_match_builder() {
    let store = small_store();
    let tiling = *store.layout().tiling();
    let total = store.data_bytes() + 4096;

    let config = EngineConfig::base_policy(total)
        .unwrap()
        .without_selective_io()
        .without_sharded_updates();
    let mut old = GStoreEngine::from_store(&store, config).unwrap();
    let mut new = GStoreEngine::builder()
        .store(&store)
        .base_policy(total)
        .selective_io(false)
        .sharded_updates(false)
        .build()
        .unwrap();

    let mut bfs_old = Bfs::new(tiling, 0);
    let stats_old = old.run(&mut bfs_old, 1000).unwrap();
    let mut bfs_new = Bfs::new(tiling, 0);
    let stats_new = new.run(&mut bfs_new, 1000).unwrap();
    assert_eq!(bfs_old.depths(), bfs_new.depths());
    assert_eq!(stats_old.bytes_read, stats_new.bytes_read);
    // Both really disabled the sharded path.
    assert_eq!(stats_old.sharded_edges, 0);
    assert_eq!(stats_new.sharded_edges, 0);
}
